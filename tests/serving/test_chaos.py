"""Fault tolerance end to end: deadlines, breaker, watchdog, chaos fleet.

Four layers, cheapest first:

- :class:`~repro.serving.faults.FaultPlan` grammar and trigger counting
  (pure functions, microseconds),
- deadline drops inside the :class:`~repro.serving.batcher.MicroBatcher`
  and the in-process :class:`~repro.api.server.ApiGateway` (no sockets),
- :class:`~repro.serving.router.Router` circuit breaker and router-side
  deadline 504s against fake stdlib replicas (sockets, no model
  processes),
- the chaos smoke: a real 3-replica fleet with a wedging replica and a
  crashing replica, a closed-loop retrying client that must see zero
  failures, and the watchdog/breaker counters proving both faults were
  detected and healed.
"""

import http.server
import json
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import (
    ApiGateway,
    Client,
    DEADLINE_HEADER,
    DeadlineExceededError,
    PredictRequest,
    RelaxRequest,
    StructurePayload,
)
from repro.api import schemas
from repro.models import HydraModel, ModelConfig
from repro.serving import (
    DeadlineExceeded,
    FaultPlan,
    FaultSpecError,
    MicroBatcher,
    ModelRegistry,
    ReplicaSpec,
    ReplicaSupervisor,
    ServeRequest,
)
from repro.serving.faults import CRASH_EXIT_CODE, FAULT_SPEC_ENV, REPLICA_ID_ENV
from repro.serving.router import BREAKER_CLOSED, BREAKER_OPEN, Router
from tests.helpers import make_molecule_graphs

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="POSIX signal semantics required"
)

WATER_BODY = json.dumps(
    {
        "schema_version": "v1",
        "structures": [
            {
                "atomic_numbers": [8, 1, 1],
                "positions": [
                    [0.0, 0.0, 0.117],
                    [0.0, 0.755, -0.471],
                    [0.0, -0.755, -0.471],
                ],
            }
        ],
    }
).encode()


def post(url: str, body: bytes, headers: dict | None = None, timeout: float = 60.0):
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json", **(headers or {})}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def get(url: str, timeout: float = 30.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


# ----------------------------------------------------------------------
# FaultPlan grammar
# ----------------------------------------------------------------------
class TestFaultSpecGrammar:
    def test_parses_the_chaos_smoke_spec(self):
        spec = "wedge:after=3:replica=0,crash:after=5:replica=1"
        plan = FaultPlan.parse(spec, replica_id=0)
        assert [clause.kind for clause in plan.clauses] == ["wedge"]
        assert plan.clauses[0].after == 3
        assert plan.clauses[0].replica == 0
        # A process with no fleet identity is not replica K: targeted
        # clauses are inert there by construction.
        assert FaultPlan.parse(spec).clauses == ()

    def test_replica_targeting_drops_foreign_clauses(self):
        spec = "wedge:after=3:replica=0,crash:after=5:replica=1,delay:ms=10"
        plan = FaultPlan.parse(spec, replica_id=1)
        assert [clause.kind for clause in plan.clauses] == ["crash", "delay"]
        # Replica 2 keeps only the untargeted clause.
        assert [c.kind for c in FaultPlan.parse(spec, replica_id=2).clauses] == ["delay"]

    def test_from_env_reads_spec_and_replica_id(self):
        assert FaultPlan.from_env({}) is None
        plan = FaultPlan.from_env(
            {FAULT_SPEC_ENV: "wedge:after=9:replica=1", REPLICA_ID_ENV: "1"}
        )
        assert plan.replica_id == 1
        assert len(plan.clauses) == 1

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "explode:after=1",  # unknown kind
            "delay",  # delay without ms
            "delay:ms=abc",  # non-numeric
            "delay:ms=10:color=red",  # unknown key
            "delay:10",  # not key=value
            "wedge",  # wedge without after
            "crash:prob=0.5",  # crash without after
            "wedge:after=0",  # after must be >= 1
            "wedge:after=1.5",  # after must be integral
            "delay:ms=1:prob=0",  # prob out of range
            "delay:ms=1:prob=1.5",
            "wedge:after=1:ms=5",  # ms only applies to delay
        ],
    )
    def test_junk_specs_raise_typed_errors(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_after_counts_requests_and_stays_triggered(self):
        plan = FaultPlan.parse("delay:ms=1:after=3")
        for _ in range(2):
            plan.on_request()  # requests 1, 2: below the threshold
        assert plan.triggered.get("delay", 0) == 0
        plan.on_request()  # request 3 fires
        plan.on_request()  # ... and it stays triggered
        assert plan.triggered["delay"] == 2
        assert plan.describe()["requests_seen"] == 4

    def test_corrupt_rides_the_same_counter(self):
        plan = FaultPlan.parse("corrupt:after=2")
        body = b'{"schema_version": "v1", "results": []}'
        plan.on_request()
        assert plan.corrupt(body) == body  # request 1: clean
        plan.on_request()
        mangled = plan.corrupt(body)
        assert mangled.startswith(b"\x00CORRUPT")
        with pytest.raises(json.JSONDecodeError):
            json.loads(mangled.decode("utf-8", errors="replace"))

    def test_crash_exit_code_is_distinguishable(self):
        assert CRASH_EXIT_CODE not in (0, 1)


# ----------------------------------------------------------------------
# Deadlines in the micro-batcher
# ----------------------------------------------------------------------
def _batcher_requests(count: int) -> list[ServeRequest]:
    graphs = make_molecule_graphs(count, seed=0)
    return [ServeRequest(graph=g, key=str(i)) for i, g in enumerate(graphs)]


class TestBatcherDeadlines:
    def test_expired_on_arrival_is_rejected_at_submit(self):
        batcher = MicroBatcher(max_atoms=10**9, max_graphs=100, flush_interval_s=60.0)
        (request,) = _batcher_requests(1)
        request.deadline = time.monotonic() - 0.001
        with pytest.raises(DeadlineExceeded, match="arrived past its deadline"):
            batcher.submit(request)
        assert batcher.expired == 1
        assert batcher.pending_graphs == 0

    def test_queued_entry_expires_at_dequeue_not_in_a_worker(self):
        """An entry whose deadline passes while queued is failed and
        removed before the batch forms — the live request still ships."""
        batcher = MicroBatcher(max_atoms=10**9, max_graphs=100, flush_interval_s=0.15)
        doomed, live = _batcher_requests(2)
        doomed.deadline = time.monotonic() + 0.02
        batcher.submit(doomed)
        batcher.submit(live)
        batch = batcher.next_batch()  # blocks ~flush_interval_s
        assert [r.key for r in batch] == [live.key]
        assert batcher.expired == 1
        assert batcher.pending_atoms == 0
        assert doomed.done()
        with pytest.raises(DeadlineExceeded, match="expired after waiting"):
            doomed.wait(timeout=0.0)

    def test_no_deadline_means_no_drops(self):
        batcher = MicroBatcher(max_atoms=10**9, max_graphs=2, flush_interval_s=60.0)
        for request in _batcher_requests(2):
            batcher.submit(request)
        assert len(batcher.next_batch()) == 2
        assert batcher.expired == 0


# ----------------------------------------------------------------------
# Deadlines and faults at the gateway (in-process, no sockets)
# ----------------------------------------------------------------------
def _gateway(**kwargs) -> ApiGateway:
    registry = ModelRegistry()
    registry.register_model(
        "tiny", HydraModel(ModelConfig(hidden_dim=8, num_layers=2), seed=0)
    )
    return ApiGateway(registry, workers=1, default_model="tiny", **kwargs)


def _predict_request(seed: int = 0, deadline_ms: float | None = None):
    graphs = make_molecule_graphs(1, seed=seed)
    return PredictRequest(
        structures=[StructurePayload.from_graph(graphs[0])], deadline_ms=deadline_ms
    )

def test_gateway_expired_deadline_is_typed_and_burns_no_forward():
    gateway = _gateway(faults=FaultPlan.parse("delay:ms=40"))
    try:
        gateway.warm()
        # The injected 40 ms delay eats the 5 ms budget before the
        # structure ever reaches the batcher: typed 504, zero forwards.
        with pytest.raises(DeadlineExceededError):
            gateway.predict(_predict_request(deadline_ms=5.0))
        snapshot = gateway.stats()
        telemetry = snapshot.models["tiny"]
        assert telemetry["serving"]["requests"] == 0  # nothing was served
        assert telemetry["batching"]["expired"] >= 1
        # A sane budget on the same gateway still predicts fine.
        response = gateway.predict(_predict_request(seed=1, deadline_ms=60_000.0))
        assert len(response.results) == 1
    finally:
        gateway.close()


def test_gateway_relax_honors_deadline_between_force_calls():
    gateway = _gateway()
    try:
        gateway.warm()
        graph = make_molecule_graphs(1, seed=2)[0]
        request = RelaxRequest(
            structure=StructurePayload.from_graph(graph),
            max_steps=200,
            fmax=1e-9,
            deadline_ms=1.0,
        )
        with pytest.raises(DeadlineExceededError):
            gateway.relax(request)
    finally:
        gateway.close()


def test_gateway_healthz_reports_inflight_ages():
    gateway = _gateway()
    try:
        gateway.warm()
        health = gateway.healthz()
        assert health["inflight"] == 0
        assert health["oldest_inflight_s"] == 0.0
        token = gateway._begin_request()
        time.sleep(0.02)
        health = gateway.healthz()
        assert health["inflight"] == 1
        assert health["oldest_inflight_s"] >= 0.02
        gateway._end_request(token)
        assert gateway.healthz()["inflight"] == 0
    finally:
        gateway.close()


# ----------------------------------------------------------------------
# Router circuit breaker + router-side deadlines (fake replicas)
# ----------------------------------------------------------------------
class _Fake:
    """A minimal stdlib HTTP replica; can rebind a specific port."""

    def __init__(self, port: int = 0):
        self.requests_served = 0
        self.last_headers: dict = {}
        fake = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def log_message(self, *args):
                pass

            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                self.rfile.read(length)
                fake.requests_served += 1
                fake.last_headers = dict(self.headers)
                body = json.dumps(
                    {"schema_version": "v1", "model": "fake", "results": []}
                ).encode()
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                body = json.dumps({"schema_version": "v1", "status": "ok"}).encode()
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self.server = http.server.ThreadingHTTPServer(("127.0.0.1", port), Handler)
        self.port = self.server.server_address[1]
        threading.Thread(target=self.server.serve_forever, daemon=True).start()

    def stop(self):
        self.server.shutdown()
        self.server.server_close()


class TestCircuitBreaker:
    def test_breaker_opens_isolates_probes_and_recloses(self):
        router = Router(breaker_failure_threshold=1, breaker_reset_s=1.0).start()
        down_port = None
        try:
            dead = _Fake()
            live = _Fake()
            router.set_replica(0, dead.port, pid=1)
            router.set_replica(1, live.port, pid=2)
            down_port = dead.port
            dead.stop()

            # 1. Connection failure: request reroutes, breaker 0 opens.
            # (Round-robin may favor the live replica first; a couple of
            # requests guarantee the dead one gets tried.)
            for _ in range(2):
                status, _ = post(router.url + "/v1/predict", WATER_BODY)
                assert status == 200
            snapshot = router.snapshot()
            assert snapshot[0]["breaker"] == BREAKER_OPEN
            assert snapshot[0]["healthy"] is False
            assert router._counters["breaker_opens"] == 1

            # 2. A wedged replica looks probe-healthy; restoring health
            # must NOT reset the breaker — inside the reset window every
            # request still routes around replica 0.
            router.set_health(0, True)
            assert router.snapshot()[0]["breaker"] == BREAKER_OPEN
            for _ in range(3):
                assert post(router.url + "/v1/predict", WATER_BODY)[0] == 200
            assert live.requests_served >= 4
            assert router._counters["breaker_opens"] == 1

            # 3. Past the reset window the single half-open probe fails
            # (replica 0 is still dead) and the breaker re-opens.
            time.sleep(1.1)
            router.set_health(1, False)  # force the probe onto replica 0
            with pytest.raises(urllib.error.HTTPError) as caught:
                post(router.url + "/v1/predict", WATER_BODY)
            assert caught.value.code == 503
            assert router.snapshot()[0]["breaker"] == BREAKER_OPEN
            assert router._counters["breaker_opens"] == 2

            # 4. The replica comes back on the same port; past the next
            # reset window the half-open probe succeeds and the breaker
            # re-closes for good.
            revived = _Fake(port=down_port)
            try:
                router.set_health(0, True)
                time.sleep(1.1)
                status, _ = post(router.url + "/v1/predict", WATER_BODY)
                assert status == 200
                assert revived.requests_served == 1
                assert router.snapshot()[0]["breaker"] == BREAKER_CLOSED
            finally:
                revived.stop()
            live.stop()
        finally:
            router.close()

    def test_respawn_resets_the_breaker(self):
        router = Router(breaker_failure_threshold=1, breaker_reset_s=60.0).start()
        try:
            dead = _Fake()
            live = _Fake()
            router.set_replica(0, dead.port, pid=1)
            router.set_replica(1, live.port, pid=2)
            dead.stop()
            for _ in range(2):
                assert post(router.url + "/v1/predict", WATER_BODY)[0] == 200
            assert router.snapshot()[0]["breaker"] == BREAKER_OPEN
            # The supervisor replacing the process registers the slot
            # anew — a fresh replica must not inherit the open breaker
            # (reset_s=60 would otherwise park it for a minute).
            replacement = _Fake()
            router.set_replica(0, replacement.port, pid=3, restarts=1)
            assert router.snapshot()[0]["breaker"] == BREAKER_CLOSED
            replacement.stop()
            live.stop()
        finally:
            router.close()


class TestRouterDeadlines:
    def test_expired_header_is_a_504_without_any_forward(self):
        router = Router().start()
        try:
            fake = _Fake()
            router.set_replica(0, fake.port, pid=1)
            with pytest.raises(urllib.error.HTTPError) as caught:
                post(
                    router.url + "/v1/predict",
                    WATER_BODY,
                    headers={DEADLINE_HEADER: "0.001"},
                )
            assert caught.value.code == 504
            body = json.loads(caught.value.read())
            assert body["error"]["code"] == "deadline_exceeded"
            assert fake.requests_served == 0  # no forward was executed
            assert router._counters["deadline_expired"] == 1
            fake.stop()
        finally:
            router.close()

    def test_forwarded_header_carries_remaining_budget(self):
        router = Router().start()
        try:
            fake = _Fake()
            router.set_replica(0, fake.port, pid=1)
            status, _ = post(
                router.url + "/v1/predict",
                WATER_BODY,
                headers={DEADLINE_HEADER: "5000"},
            )
            assert status == 200
            advertised = float(fake.last_headers[DEADLINE_HEADER])
            assert 0.0 < advertised <= 5000.0
            fake.stop()
        finally:
            router.close()

    def test_malformed_header_is_forwarded_for_the_replica_to_judge(self):
        """The router never authors 400s; the replica owns validation."""
        router = Router().start()
        try:
            fake = _Fake()
            router.set_replica(0, fake.port, pid=1)
            status, _ = post(
                router.url + "/v1/predict",
                WATER_BODY,
                headers={DEADLINE_HEADER: "not-a-number"},
            )
            assert status == 200  # the fake doesn't validate; a real one 400s
            assert fake.last_headers[DEADLINE_HEADER] == "not-a-number"
            fake.stop()
        finally:
            router.close()


# ----------------------------------------------------------------------
# The chaos smoke: a real fleet with injected faults
# ----------------------------------------------------------------------
CHAOS_SPEC = "wedge:after=5:replica=0,crash:after=5:replica=1"


@pytest.fixture(scope="module")
def chaos_fleet(tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("chaos") / "autotune.json")
    spec = ReplicaSpec(
        args=(
            "--preset",
            "tiny",
            "--workers",
            "1",
            "--flush-interval",
            "0.002",
            "--autotune-cache",
            cache,
            "--fault-spec",
            CHAOS_SPEC,
        )
    )
    supervisor = ReplicaSupervisor(
        count=3,
        spec=spec,
        probe_interval_s=0.2,
        probe_timeout_s=1.0,
        max_request_age_s=1.0,
        term_grace_s=0.5,
        breaker_failure_threshold=1,
        breaker_reset_s=0.5,
    )
    supervisor.start()
    yield supervisor
    supervisor.close()


def _wait_for(predicate, timeout_s: float, what: str):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise AssertionError(f"timed out after {timeout_s}s waiting for {what}")


class TestChaosFleet:
    def test_closed_loop_survives_wedge_and_crash_with_zero_failures(self, chaos_fleet):
        """The acceptance bar: one replica wedges, one crashes, and a
        retrying client still sees every request succeed while the
        watchdog respawns both."""
        payloads = [
            StructurePayload.from_graph(graph)
            for graph in make_molecule_graphs(4, seed=7)
        ]
        with Client.http(
            chaos_fleet.url,
            retries=5,
            backoff_s=0.1,
            backoff_max_s=1.0,
            read_timeout_s=60.0,
        ) as client:
            for index in range(30):
                base = payloads[index % len(payloads)]
                # Jitter defeats the result cache, so every request costs
                # a real forward and advances the replicas' fault counters.
                jittered = StructurePayload(
                    atomic_numbers=base.atomic_numbers,
                    positions=base.positions + 0.001 * (index + 1),
                    cell=base.cell,
                    pbc=base.pbc,
                )
                results = client.predict([jittered])
                assert len(results) == 1
                assert np.isfinite(results[0].energy)

        # The wedge was detected by in-flight age and escalated...
        _wait_for(
            lambda: chaos_fleet.watchdog["hung_detected"] >= 1
            and chaos_fleet.watchdog["respawns"] >= 1,
            timeout_s=30.0,
            what="the watchdog to detect and respawn the wedged replica",
        )
        assert chaos_fleet.watchdog["sigterm"] >= 1
        # ... and the crashed replica was respawned by the monitor.
        _wait_for(
            lambda: chaos_fleet.describe()["replicas"][1]["restarts"] >= 1,
            timeout_s=30.0,
            what="the crashed replica to be respawned",
        )

        # Both fault kinds forced mid-request connection failures, so
        # the breaker opened at least once — and the fleet healed, so
        # every breaker is closed again and every replica routable.
        assert chaos_fleet.router._counters["breaker_opens"] >= 1
        _wait_for(
            lambda: all(
                entry["routing"]["breaker"] == BREAKER_CLOSED
                and entry["routing"]["healthy"]
                for entry in chaos_fleet.describe()["replicas"].values()
            ),
            timeout_s=30.0,
            what="all breakers to re-close on the healed fleet",
        )

        # The healed fleet still answers.
        status, payload = post(chaos_fleet.url + "/v1/predict", WATER_BODY)
        assert status == 200
        assert len(payload["results"]) == 1

    def test_expired_deadline_is_a_typed_504_on_the_real_fleet(self, chaos_fleet):
        with pytest.raises(urllib.error.HTTPError) as caught:
            post(
                chaos_fleet.url + "/v1/predict",
                WATER_BODY,
                headers={DEADLINE_HEADER: "0.001"},
            )
        assert caught.value.code == 504
        assert json.loads(caught.value.read())["error"]["code"] == "deadline_exceeded"

    def test_stats_aggregate_fault_and_deadline_telemetry(self, chaos_fleet):
        status, payload = get(chaos_fleet.url + "/v1/stats")
        assert status == 200
        router = payload["router"]
        assert router["breaker_opens"] >= 1
        assert "deadline_expired" in router
        # The supervisor's escalation counters ride the router's stats
        # payload (additive v1 field) — and they still parse strictly.
        assert payload["watchdog"]["hung_detected"] >= 1
        assert payload["watchdog"]["respawns"] >= 1
        parsed = schemas.StatsSnapshot.from_json_dict(payload)
        assert parsed.watchdog == payload["watchdog"]
        for model in payload["models"].values():
            assert "expired" in model["batching"]


# ----------------------------------------------------------------------
# Rolling restart during an in-flight chunked relax
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def clean_fleet(tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("clean") / "autotune.json")
    spec = ReplicaSpec(
        args=(
            "--preset",
            "tiny",
            "--workers",
            "1",
            "--flush-interval",
            "0.002",
            "--autotune-cache",
            cache,
        )
    )
    supervisor = ReplicaSupervisor(count=2, spec=spec, probe_interval_s=0.2)
    supervisor.start()
    yield supervisor
    supervisor.close()


class TestRollingRestartDuringRelax:
    def test_chunked_relax_survives_a_rolling_restart(self, clean_fleet):
        """A chunked descent keeps its progress client-side, so a
        rolling restart mid-descent costs at most one retried segment —
        never a duplicated step and never a failed relax."""
        graph = make_molecule_graphs(1, seed=11)[0]
        max_steps = 40
        outcome: dict = {}

        def descend():
            with Client.http(
                clean_fleet.url, retries=5, backoff_s=0.1, read_timeout_s=60.0
            ) as client:
                outcome["result"] = client.relax(
                    graph,
                    max_steps=max_steps,
                    fmax=1e-9,  # unreachably tight: the descent runs long
                    chunk_steps=4,
                )

        relaxer = threading.Thread(target=descend)
        relaxer.start()
        time.sleep(0.3)  # let the first segments land
        clean_fleet.rolling_restart()
        relaxer.join(timeout=120.0)
        assert not relaxer.is_alive(), "relax did not finish after the rolling restart"
        result = outcome["result"]
        # Segments resumed from accepted positions: the combined step
        # count can never exceed the budget (a duplicated segment would
        # overshoot it), and the descent made real progress.
        assert 0 < result.steps <= max_steps
        assert result.energy <= result.energy_initial
        assert np.all(np.isfinite(result.positions))
