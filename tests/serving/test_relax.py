"""Relaxation and trajectory sessions through the PredictionService."""

import numpy as np
import pytest

from repro.graph import AtomGraph, build_edges
from repro.models import HydraModel, ModelConfig
from repro.serving import (
    MAX_RELAX_STEPS,
    PredictionService,
    RelaxSettings,
    ServiceConfig,
    relax_positions,
)

CONFIG = ModelConfig(hidden_dim=16, num_layers=2)
CUTOFF = 4.0


@pytest.fixture(scope="module")
def model():
    return HydraModel(CONFIG, seed=0)


def make_graph(n=12, seed=0, spread=4.5):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0.0, spread, size=(n, 3))
    numbers = rng.integers(1, 9, size=n)
    edge_index, edge_shift = build_edges(positions, CUTOFF)
    return AtomGraph(
        atomic_numbers=numbers,
        positions=positions,
        edge_index=edge_index,
        edge_shift=edge_shift,
        source="test",
    )


class TestRelaxSettings:
    def test_rejects_out_of_range_max_steps(self):
        with pytest.raises(ValueError):
            RelaxSettings(max_steps=0)
        with pytest.raises(ValueError):
            RelaxSettings(max_steps=MAX_RELAX_STEPS + 1)

    @pytest.mark.parametrize("field", ["fmax", "step_size", "max_step", "min_step", "skin", "cutoff"])
    def test_rejects_non_positive_floats(self, field):
        with pytest.raises(ValueError):
            RelaxSettings(**{field: 0.0})


class TestRelaxLoop:
    def test_terminates_and_reports(self, model):
        service = PredictionService(model)
        graph = make_graph(seed=1)
        result = service.relax(graph, RelaxSettings(max_steps=50, cutoff=CUTOFF))
        assert result.reason in ("fmax", "step", "max_steps")
        assert result.converged == (result.reason != "max_steps")
        assert 1 <= result.steps <= 50
        assert result.positions.shape == (graph.n_atoms, 3)
        assert result.forces.shape == (graph.n_atoms, 3)
        assert np.isfinite(result.energy)
        # Energy never increases: trial steps are accepted only downhill.
        assert result.energy <= result.energy_initial

    def test_max_steps_budget_is_respected(self, model):
        service = PredictionService(model)
        graph = make_graph(seed=2)
        # An unreachable fmax forces the loop to its caps.
        settings = RelaxSettings(max_steps=5, fmax=1e-12, min_step=1e-12, cutoff=CUTOFF)
        result = service.relax(graph, settings)
        assert result.steps <= 5
        if result.reason == "max_steps":
            assert not result.converged

    def test_relax_counters_in_telemetry(self, model):
        service = PredictionService(model)
        result = service.relax(make_graph(seed=3), RelaxSettings(max_steps=30, cutoff=CUTOFF))
        relax = service.telemetry()["relax"]
        assert relax["sessions"] == 1
        assert relax["steps"] == result.steps
        assert relax["converged"] == int(result.converged)
        assert relax["neighbor_rebuilds"] == result.neighbor_rebuilds
        assert relax["neighbor_reuses"] == result.neighbor_reuses
        assert relax["neighbor_rebuilds"] + relax["neighbor_reuses"] == result.steps
        assert 0.0 <= relax["neighbor_reuse_rate"] <= 1.0

    def test_rides_plan_cache(self, model):
        """Consecutive relax steps replay one traced plan bucket."""
        service = PredictionService(model, ServiceConfig(plan=True))
        service.relax(make_graph(seed=4), RelaxSettings(max_steps=20, cutoff=CUTOFF))
        plans = service.telemetry()["plans"]
        assert plans["enabled"]
        assert plans["plan_hits"] >= 1

    def test_function_matches_service_method(self, model):
        """relax_positions over bare predict == service.relax (same arithmetic)."""
        graph = make_graph(seed=5)
        settings = RelaxSettings(max_steps=25, cutoff=CUTOFF)
        service_a = PredictionService(model)
        via_service = service_a.relax(graph, settings)
        service_b = PredictionService(model)
        via_function = relax_positions(service_b.predict, graph, settings)
        assert via_function.steps == via_service.steps
        assert via_function.reason == via_service.reason
        np.testing.assert_array_equal(via_function.positions, via_service.positions)
        assert via_function.energy == via_service.energy


class TestTrajectorySession:
    def test_session_reuses_neighbor_candidates(self, model):
        service = PredictionService(model)
        graph = make_graph(seed=6)
        session = service.trajectory(graph.atomic_numbers, cutoff=CUTOFF, skin=0.4)
        rng = np.random.default_rng(7)
        positions = graph.positions
        for _ in range(6):
            positions = positions + rng.normal(0.0, 0.005, size=positions.shape)
            result = session.step(positions)
            assert np.isfinite(result.energy)
        assert session.steps == 6
        assert session.rebuilds == 1
        assert session.reuses == 5

    def test_session_steps_feed_service_telemetry(self, model):
        service = PredictionService(model)
        graph = make_graph(seed=8)
        session = service.trajectory(graph.atomic_numbers, cutoff=CUTOFF)
        session.step(graph.positions)
        session.step(graph.positions + 0.003)
        relax = service.telemetry()["relax"]
        assert relax["sessions"] == 1
        assert relax["steps"] == 2
        assert relax["neighbor_rebuilds"] + relax["neighbor_reuses"] == 2

    def test_session_matches_one_shot_predict(self, model):
        """A session step equals a fresh predict on the same canonical graph."""
        from repro.graph.radius import SkinNeighborList

        service = PredictionService(model)
        graph = make_graph(seed=9)
        session = service.trajectory(graph.atomic_numbers, cutoff=CUTOFF, skin=0.3)
        stepped = session.step(graph.positions)

        nl = SkinNeighborList(CUTOFF, 0.3)
        edge_index, edge_shift = nl.update(graph.positions)
        reference = service.predict(
            AtomGraph(
                atomic_numbers=graph.atomic_numbers,
                positions=graph.positions,
                edge_index=edge_index,
                edge_shift=edge_shift,
                source="trajectory",
            )
        )
        assert stepped.energy == reference.energy
        np.testing.assert_array_equal(stepped.forces, reference.forces)


class TestServedMode:
    def test_relax_through_started_service(self, model):
        """Relax steps ride the micro-batcher alongside worker threads."""
        service = PredictionService(model, ServiceConfig(flush_interval_s=0.005))
        service.start(workers=2)
        try:
            result = service.relax(make_graph(seed=10), RelaxSettings(max_steps=20, cutoff=CUTOFF))
            assert result.steps >= 1
            assert service.telemetry()["relax"]["sessions"] == 1
        finally:
            service.stop()
