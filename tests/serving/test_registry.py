"""Model registry: residency, lazy checkpoint loads, validation."""

import numpy as np
import pytest

from repro.models import HydraModel, ModelConfig
from repro.serving import ModelRegistry
from repro.train import save_checkpoint

CONFIG = ModelConfig(hidden_dim=8, num_layers=2)


def test_register_resident_model():
    registry = ModelRegistry()
    model = HydraModel(CONFIG, seed=0)
    registry.register_model("canary", model)
    assert registry.get("canary") is model
    assert "canary" in registry
    assert registry.names() == ["canary"]


def test_checkpoint_registration_is_lazy_and_cached(tmp_path):
    model = HydraModel(CONFIG, seed=4)
    path = save_checkpoint(tmp_path / "m.npz", model, global_step=11)
    registry = ModelRegistry()
    metadata = registry.register_checkpoint("prod", path)
    assert metadata["global_step"] == 11
    assert registry.describe()[0]["loaded"] is False

    loaded = registry.get("prod")
    assert registry.describe()[0]["loaded"] is True
    for key, value in model.state_dict().items():
        assert np.array_equal(value, loaded.state_dict()[key]), key
    assert registry.get("prod") is loaded  # second get: no reload


def test_bad_checkpoint_fails_at_registration(tmp_path):
    bogus = tmp_path / "bogus.npz"
    np.savez(bogus, metadata=np.frombuffer(b'{"format": "other"}', dtype=np.uint8))
    registry = ModelRegistry()
    with pytest.raises(ValueError):
        registry.register_checkpoint("bad", bogus)
    assert len(registry) == 0


def test_missing_name_lists_known(tmp_path):
    registry = ModelRegistry()
    registry.register_model("a", HydraModel(CONFIG, seed=0))
    with pytest.raises(KeyError, match="'a'"):
        registry.get("nope")


def test_describe_reports_config(tmp_path):
    registry = ModelRegistry()
    registry.register_model("mem", HydraModel(CONFIG, seed=0))
    path = save_checkpoint(tmp_path / "d.npz", HydraModel(CONFIG, seed=1))
    registry.register_checkpoint("disk", path)
    rows = {row["name"]: row for row in registry.describe()}
    assert rows["mem"]["config"]["hidden_dim"] == 8
    assert rows["disk"]["config"]["hidden_dim"] == 8
    assert rows["disk"]["path"] is not None
