"""The replica subsystem: router, telemetry aggregation, supervisor.

Three layers, cheapest first:

- pure-function tests of :func:`aggregate_model_telemetry`,
- :class:`Router` against fake stdlib HTTP replicas (load balancing,
  rerouting, draining, timeouts — no model, milliseconds each),
- a real 2-replica :class:`ReplicaSupervisor` fleet (tiny preset) for
  the things only processes can prove: kill -9 recovery, rolling
  restarts under sustained load with zero dropped requests, and the
  aggregated ``/v1/stats`` contract, plus the ``--replicas`` CLI as a
  subprocess with a graceful SIGTERM drain.
"""

import http.server
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.api import schemas, server
from repro.api.schemas import StatsSnapshot
from repro.serving import ReplicaSpec, ReplicaSupervisor
from repro.serving import router as router_module
from repro.serving.router import Router, aggregate_model_telemetry

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="POSIX signal semantics required"
)

WATER_BODY = json.dumps(
    {
        "schema_version": "v1",
        "structures": [
            {
                "atomic_numbers": [8, 1, 1],
                "positions": [
                    [0.0, 0.0, 0.117],
                    [0.0, 0.755, -0.471],
                    [0.0, -0.755, -0.471],
                ],
            }
        ],
    }
).encode()


def post(url: str, body: bytes, timeout: float = 60.0):
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def get(url: str, timeout: float = 30.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, json.loads(response.read())


# ----------------------------------------------------------------------
# Telemetry aggregation (pure functions)
# ----------------------------------------------------------------------
def replica_models(requests, cache_hits, plan_hits, plan_misses, p50):
    return {
        "default": {
            "serving": {
                "requests": requests,
                "cache_hits": cache_hits,
                "cache_hit_rate": cache_hits / requests if requests else 0.0,
                "batches": 2,
                "mean_batch_graphs": 2.0,
                "mean_batch_atoms": 30.0,
                "p50_latency_s": p50,
                "p95_latency_s": p50 * 2,
                "mean_latency_s": p50,
                "wall_time_s": 1.0,
                "requests_per_s": float(requests),
                "atoms_per_s": 100.0,
            },
            "result_cache": {"hits": cache_hits, "misses": requests - cache_hits,
                             "evictions": 0, "hit_rate": 0.5},
            "buffer_pool": {"hits": 4, "misses": 2, "evictions": 0, "hit_rate": 0.66,
                            "reserved_bytes": 1024, "idle_buffers": 2},
            "plans": {
                "enabled": True,
                "plans_compiled": plan_misses,
                "plan_hits": plan_hits,
                "plan_misses": plan_misses,
                "plan_fallbacks": 0,
                "plan_hit_rate": 0.0,
                "cached_plans": plan_misses,
            },
            "batching": {"max_atoms": 512, "max_graphs": 64, "flush_interval_s": 0.005,
                         "max_pending": 0, "rejected": 1, "flush_reasons": {"timeout": 2}},
            "engine": {"backend": "numpy", "physical_units": False,
                       "autotune_decisions": 3},
        }
    }


class TestAggregation:
    def test_counters_sum_and_rates_recompute(self):
        merged = aggregate_model_telemetry(
            [
                replica_models(requests=6, cache_hits=3, plan_hits=4, plan_misses=1, p50=0.002),
                replica_models(requests=2, cache_hits=2, plan_hits=0, plan_misses=1, p50=0.010),
            ]
        )
        entry = merged["default"]
        assert entry["replica_count"] == 2
        assert entry["serving"]["requests"] == 8
        assert entry["serving"]["cache_hits"] == 5
        assert entry["serving"]["cache_hit_rate"] == pytest.approx(5 / 8)
        # Plan counters sum; the hit rate is recomputed from the sums,
        # not averaged from the per-replica rates.
        assert entry["plans"]["plan_hits"] == 4
        assert entry["plans"]["plan_misses"] == 2
        assert entry["plans"]["plans_compiled"] == 2
        assert entry["plans"]["plan_hit_rate"] == pytest.approx(4 / 6)
        assert entry["plans"]["cached_plans"] == 2
        assert entry["batching"]["rejected"] == 2
        assert entry["batching"]["flush_reasons"] == {"timeout": 4}

    def test_latency_is_request_weighted(self):
        merged = aggregate_model_telemetry(
            [
                replica_models(requests=6, cache_hits=0, plan_hits=0, plan_misses=1, p50=0.002),
                replica_models(requests=2, cache_hits=0, plan_hits=0, plan_misses=1, p50=0.010),
            ]
        )
        p50 = merged["default"]["serving"]["p50_latency_s"]
        assert p50 == pytest.approx((6 * 0.002 + 2 * 0.010) / 8)

    def test_missing_sections_are_tolerated(self):
        """A replica on older code contributes only what it reports."""
        sparse = {"default": {"serving": {"requests": 4, "cache_hits": 1}}}
        full = replica_models(requests=6, cache_hits=3, plan_hits=4, plan_misses=1, p50=0.002)
        merged = aggregate_model_telemetry([full, sparse])
        entry = merged["default"]
        assert entry["serving"]["requests"] == 10
        assert entry["plans"]["plan_hits"] == 4  # only the full replica's
        assert entry["result_cache"]["hits"] == 3

    def test_disjoint_model_names_keep_separate_entries(self):
        merged = aggregate_model_telemetry(
            [{"a": {"serving": {"requests": 1}}}, {"b": {"serving": {"requests": 2}}}]
        )
        assert merged["a"]["serving"]["requests"] == 1
        assert merged["b"]["serving"]["requests"] == 2
        assert merged["a"]["replica_count"] == 1

    def test_empty_fleet_aggregates_to_empty(self):
        assert aggregate_model_telemetry([]) == {}


# ----------------------------------------------------------------------
# Router against fake replicas (no model, no subprocess)
# ----------------------------------------------------------------------
class _FakeReplica:
    """A stdlib HTTP server impersonating one replica's ApiServer."""

    def __init__(self, predict_delay_s: float = 0.0):
        self.requests_served = 0
        self.predict_delay_s = predict_delay_s
        fake = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def log_message(self, *args):  # silence
                pass

            def _reply(self, status: int, payload: dict) -> None:
                body = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                self.rfile.read(length)
                if fake.predict_delay_s:
                    time.sleep(fake.predict_delay_s)
                fake.requests_served += 1
                self._reply(200, {"schema_version": "v1", "model": "fake",
                                  "served_by": fake.port, "results": []})

            def do_GET(self):
                if self.path == "/v1/stats":
                    self._reply(
                        200,
                        {
                            "schema_version": "v1",
                            "models": replica_models(
                                requests=fake.requests_served,
                                cache_hits=0,
                                plan_hits=1,
                                plan_misses=1,
                                p50=0.001,
                            ),
                            "uptime_s": 1.0,
                            "pid": os.getpid(),
                        },
                    )
                else:
                    self._reply(200, {"schema_version": "v1", "status": "ok"})

        self.server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(target=self.server.serve_forever, daemon=True)
        self.thread.start()

    def stop(self):
        self.server.shutdown()
        self.server.server_close()


@pytest.fixture()
def two_fakes():
    fakes = [_FakeReplica(), _FakeReplica()]
    router = Router().start()
    for replica_id, fake in enumerate(fakes):
        router.set_replica(replica_id, fake.port, pid=1000 + replica_id)
    yield router, fakes
    router.close()
    for fake in fakes:
        fake.stop()


class TestRouter:
    def test_wire_constants_pin_the_api_package(self):
        """serving must not import api, so the mirrored constants are
        pinned here: drift would fork the wire contract."""
        assert router_module.SCHEMA_VERSION == schemas.SCHEMA_VERSION
        assert router_module.MAX_BODY_BYTES == server.MAX_BODY_BYTES
        assert router_module.DEADLINE_HEADER == schemas.DEADLINE_HEADER
        assert router_module.CLIENT_HEADER == schemas.CLIENT_HEADER
        assert router_module.PRIORITY_HEADER == schemas.PRIORITY_HEADER

    def test_load_balances_across_replicas(self, two_fakes):
        router, fakes = two_fakes
        for _ in range(8):
            status, payload = post(router.url + "/v1/predict", WATER_BODY)
            assert status == 200
        assert fakes[0].requests_served >= 2
        assert fakes[1].requests_served >= 2

    def test_reroutes_around_a_dead_replica(self, two_fakes):
        router, fakes = two_fakes
        fakes[0].stop()
        for _ in range(4):
            status, _ = post(router.url + "/v1/predict", WATER_BODY)
            assert status == 200
        snapshot = router.snapshot()
        assert snapshot[0]["healthy"] is False  # marked down on first failure
        assert snapshot[1]["healthy"] is True

    def test_all_dead_is_a_typed_503(self, two_fakes):
        router, fakes = two_fakes
        router.set_health(0, False)
        router.set_health(1, False)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(router.url + "/v1/predict", WATER_BODY)
        assert excinfo.value.code == 503
        assert json.loads(excinfo.value.read())["error"]["code"] == "unavailable"
        # Retryable by contract: the 503 carries a Retry-After hint.
        assert int(excinfo.value.headers["Retry-After"]) >= 1

    def _saturated(self, level: int, wait_s: float = 0.5) -> dict:
        return {
            "queue_depth": 8,
            "estimated_wait_s": wait_s,
            "brownout_level": level,
            "brownout_state": ("normal", "shed_background", "shed_bulk")[level],
        }

    def post_lane(self, router, lane: str | None):
        headers = {} if lane is None else {schemas.PRIORITY_HEADER: lane}
        request = urllib.request.Request(
            router.url + "/v1/predict",
            data=WATER_BODY,
            headers={"Content-Type": "application/json", **headers},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status

    def test_front_door_sheds_only_when_fleet_is_unanimous(self, two_fakes):
        router, fakes = two_fakes
        # One replica in brownout: the healthy sibling still accepts, so
        # the router keeps forwarding every lane.
        router.set_saturation(0, self._saturated(1))
        for lane in (None, "interactive", "bulk", "background"):
            assert self.post_lane(router, lane) == 200
        # Whole fleet at level 1: background is shed at the front door
        # with an honest hint; bulk and interactive still cross the wire.
        router.set_saturation(1, self._saturated(1, wait_s=2.2))
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post_lane(router, "background")
        assert excinfo.value.code == 429
        body = json.loads(excinfo.value.read())
        assert body["error"]["code"] == "overloaded"
        assert "fleet brownout" in body["error"]["message"]
        assert body["error"]["retry_after_s"] == pytest.approx(2.2)
        assert int(excinfo.value.headers["Retry-After"]) == 3
        assert self.post_lane(router, "bulk") == 200
        assert self.post_lane(router, "interactive") == 200
        # Level 2 sheds bulk too; interactive always crosses.
        router.set_saturation(0, self._saturated(2))
        router.set_saturation(1, self._saturated(2))
        with pytest.raises(urllib.error.HTTPError):
            self.post_lane(router, "bulk")
        assert self.post_lane(router, "interactive") == 200
        assert self.post_lane(router, None) == 200
        # Recovery on one replica reopens the front door for every lane.
        router.set_saturation(0, self._saturated(0))
        assert self.post_lane(router, "background") == 200
        assert get(router.url + "/v1/stats")[1]["router"]["brownout_shed"] == 2

    def test_identity_headers_forwarded_to_replicas(self):
        seen = {}

        class _Recorder(_FakeReplica):
            def __init__(self):
                super().__init__()

        fake = _Recorder()
        original_handler = fake.server.RequestHandlerClass
        do_post = original_handler.do_POST

        def recording_post(handler):
            seen["client"] = handler.headers.get(schemas.CLIENT_HEADER)
            seen["priority"] = handler.headers.get(schemas.PRIORITY_HEADER)
            do_post(handler)

        original_handler.do_POST = recording_post
        router = Router().start()
        router.set_replica(0, fake.port, pid=1)
        try:
            request = urllib.request.Request(
                router.url + "/v1/predict",
                data=WATER_BODY,
                headers={
                    "Content-Type": "application/json",
                    schemas.CLIENT_HEADER: "tenant-a",
                    schemas.PRIORITY_HEADER: "bulk",
                },
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
            assert seen == {"client": "tenant-a", "priority": "bulk"}
        finally:
            router.close()
            fake.stop()

    def test_draining_rejects_new_while_in_flight_finishes(self):
        fake = _FakeReplica(predict_delay_s=0.6)
        router = Router().start()
        router.set_replica(0, fake.port, pid=1)
        try:
            results = {}

            def slow_predict():
                results["slow"] = post(router.url + "/v1/predict", WATER_BODY, timeout=30)

            thread = threading.Thread(target=slow_predict)
            thread.start()
            deadline = time.monotonic() + 5
            while router.total_in_flight() == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert router.total_in_flight() == 1

            router.stop_admitting()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(router.url + "/v1/predict", WATER_BODY)
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["error"]["code"] == "unavailable"

            assert router.wait_idle(timeout_s=10.0)  # the admitted one finishes
            thread.join(timeout=10.0)
            assert results["slow"][0] == 200

            router.resume_admitting()
            status, _ = post(router.url + "/v1/predict", WATER_BODY)
            assert status == 200
        finally:
            router.close()
            fake.stop()

    def test_slow_replica_times_out_without_reroute(self):
        """Timeouts mean load, not death: 504, no retry on a sibling."""
        fake = _FakeReplica(predict_delay_s=5.0)
        router = Router(proxy_timeout_s=0.3).start()
        router.set_replica(0, fake.port, pid=1)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post(router.url + "/v1/predict", WATER_BODY, timeout=30)
            assert excinfo.value.code == 504
            assert json.loads(excinfo.value.read())["error"]["code"] == "timeout"
            assert router.snapshot()[0]["healthy"] is True  # not marked down
        finally:
            router.close()
            fake.stop()

    def test_unknown_endpoint_is_a_v1_404(self, two_fakes):
        router, _ = two_fakes
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(router.url + "/v1/nope")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"]["code"] == "not_found"

    def test_stats_aggregate_parses_as_v1_snapshot(self, two_fakes):
        router, _ = two_fakes
        for _ in range(4):
            post(router.url + "/v1/predict", WATER_BODY)
        status, payload = get(router.url + "/v1/stats")
        assert status == 200
        snapshot = StatsSnapshot.from_json_dict(payload)  # strict v1 parse
        assert snapshot.models["default"]["serving"]["requests"] == 4
        assert snapshot.models["default"]["replica_count"] == 2
        assert snapshot.models["default"]["plans"]["plan_hits"] == 2  # 1 per fake
        assert set(snapshot.replicas) == {"0", "1"}
        assert snapshot.router["requests"] == 4
        assert snapshot.router["admitting"] is True
        assert snapshot.pid == os.getpid()

    def test_health_degrades_with_the_fleet(self, two_fakes):
        router, _ = two_fakes
        assert get(router.url + "/v1/healthz")[1]["status"] == "ok"
        router.set_health(0, False)
        assert get(router.url + "/v1/healthz")[1]["status"] == "degraded"
        router.set_health(1, False)
        # Zero healthy replicas: load balancers keying on the status code
        # must see a failing probe, not a 200 that says "unavailable".
        with pytest.raises(urllib.error.HTTPError) as caught:
            get(router.url + "/v1/healthz")
        assert caught.value.code == 503
        body = json.loads(caught.value.read())
        assert body["error"]["code"] == "unavailable"
        with pytest.raises(urllib.error.HTTPError) as caught:
            get(router.url + "/v1/stats")
        assert caught.value.code == 503
        assert json.loads(caught.value.read())["error"]["code"] == "unavailable"
        router.set_health(0, True)
        router.stop_admitting()
        assert get(router.url + "/v1/healthz")[1]["status"] == "shutting_down"


# ----------------------------------------------------------------------
# The real thing: a 2-replica fleet of tiny-preset servers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("replicas") / "autotune.json")
    spec = ReplicaSpec(
        args=(
            "--preset",
            "tiny",
            "--workers",
            "1",
            "--flush-interval",
            "0.002",
            "--max-pending",
            "0",
            "--autotune-cache",
            cache,
        )
    )
    supervisor = ReplicaSupervisor(count=2, spec=spec, probe_interval_s=0.2)
    supervisor.start()
    yield supervisor
    supervisor.close()


class TestSupervisor:
    def test_predict_and_aggregated_stats(self, fleet):
        for _ in range(4):
            status, payload = post(fleet.url + "/v1/predict", WATER_BODY)
            assert status == 200
            assert payload["results"][0]["n_atoms"] == 3

        status, payload = get(fleet.url + "/v1/stats")
        snapshot = StatsSnapshot.from_json_dict(payload)
        entry = snapshot.models["default"]
        assert entry["serving"]["requests"] >= 4
        assert "plan_hits" in entry["plans"] and "plans_compiled" in entry["plans"]
        # Per-replica breakdown carries each process's identity.
        reported_pids = {
            replica["replica_pid"] for replica in snapshot.replicas.values()
        }
        assert reported_pids == set(fleet.pids().values())
        for replica in snapshot.replicas.values():
            assert replica["healthy"] is True
            assert "models" in replica
        assert snapshot.router["requests"] >= 4
        # Fleet-merged overload-protection view: every admitted request
        # rode a lane, and a healthy fleet reports brownout "normal".
        admission = entry["admission"]
        assert admission["lanes"]["interactive"]["admitted"] >= 4
        assert admission["brownout"]["state"] == "normal"
        assert admission["shed"].get("brownout", 0) == 0

    def test_sigkill_reroutes_and_respawns(self, fleet):
        victim_id, victim_pid = 0, fleet.pids()[0]
        os.kill(victim_pid, signal.SIGKILL)
        # Every request during the outage must still succeed: the router
        # reroutes a refused connection to the surviving replica.
        for _ in range(6):
            status, _ = post(fleet.url + "/v1/predict", WATER_BODY)
            assert status == 200
        # ... and the supervisor brings up a replacement in the slot.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            new_pid = fleet.pids()[victim_id]
            if new_pid not in (victim_pid, 0) and fleet.router.snapshot()[victim_id]["healthy"]:
                break
            time.sleep(0.1)
        else:
            pytest.fail(f"replica {victim_id} was not respawned: {fleet.describe()}")
        assert fleet.router.snapshot()[victim_id]["restarts"] == 1
        status, _ = post(fleet.url + "/v1/predict", WATER_BODY)
        assert status == 200

    def test_rolling_restart_under_load_drops_nothing(self, fleet):
        before = dict(fleet.pids())
        stop = threading.Event()
        failures: list[BaseException] = []
        completed = [0]

        def hammer():
            while not stop.is_set():
                try:
                    status, _ = post(fleet.url + "/v1/predict", WATER_BODY, timeout=60)
                    assert status == 200
                    completed[0] += 1
                except BaseException as error:  # any failed request fails the test
                    failures.append(error)
                    return

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            new_pids = fleet.rolling_restart(drain_timeout_s=60.0)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60.0)
        assert not failures, f"requests failed during rolling restart: {failures[:3]}"
        assert completed[0] > 0
        for replica_id, old_pid in before.items():
            assert new_pids[replica_id] != old_pid
        # The restarted fleet serves.
        status, _ = post(fleet.url + "/v1/predict", WATER_BODY)
        assert status == 200


# ----------------------------------------------------------------------
# The CLI front door: repro serve --http 0 --replicas N
# ----------------------------------------------------------------------
class TestCliReplicas:
    def _launch(self, tmp_path, *extra):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--http",
                "0",
                "--replicas",
                "2",
                "--preset",
                "tiny",
                "--workers",
                "1",
                "--flush-interval",
                "0.002",
                "--autotune-cache",
                str(tmp_path / "autotune.json"),
                *extra,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def test_sigterm_drains_in_flight_and_exits_zero(self, tmp_path):
        process = self._launch(tmp_path)
        try:
            deadline = time.monotonic() + 120
            url = None
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                match = re.search(r"bound_port=(\d+)", line)
                if match:
                    url = f"http://127.0.0.1:{match.group(1)}"
                    break
                assert line and process.poll() is None, "supervisor died during startup"
            assert url is not None

            # Warm both replicas, then put genuinely slow requests in
            # flight: 12 unique 48-atom structures per request keep each
            # replica busy long enough for SIGTERM to land mid-request.
            assert post(url + "/v1/predict", WATER_BODY, timeout=120)[0] == 200
            rng = np.random.default_rng(7)
            heavy_body = json.dumps(
                {
                    "schema_version": "v1",
                    "structures": [
                        {
                            "atomic_numbers": rng.integers(1, 9, 48).tolist(),
                            "positions": (rng.random((48, 3)) * 6.0).tolist(),
                        }
                        for _ in range(12)
                    ],
                }
            ).encode()

            outcomes: list[object] = []

            def predict():
                # An in-flight request must complete (200); one that
                # arrives after the drain gate closes gets the typed 503.
                # Anything else — dropped connection, reset, timeout —
                # means the drain lost a request.
                try:
                    outcomes.append(post(url + "/v1/predict", heavy_body, timeout=60)[0])
                except urllib.error.HTTPError as error:
                    outcomes.append(error.code)
                except BaseException as error:  # noqa: BLE001 - asserted below
                    outcomes.append(error)

            threads = [threading.Thread(target=predict) for _ in range(6)]
            for thread in threads:
                thread.start()
            time.sleep(0.05)  # let the requests reach the replicas
            process.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=60.0)
            out, _ = process.communicate(timeout=120)
            assert process.returncode == 0, (process.returncode, out)
            assert "supervisor stopped cleanly" in out, out
            assert len(outcomes) == len(threads)
            assert all(outcome in (200, 503) for outcome in outcomes), outcomes
            assert 200 in outcomes  # at least some were admitted and completed
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

    def test_replicas_requires_http(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--replicas", "2", "--preset", "tiny"],
            env={
                **os.environ,
                "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
            },
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode != 0
        assert "--replicas" in result.stderr + result.stdout
