"""Micro-batcher flush discipline: budgets, timeout tick, drain."""

import threading
import time

import pytest

from repro.serving import (
    FLUSH_ATOMS,
    FLUSH_GRAPHS,
    FLUSH_TIMEOUT,
    MicroBatcher,
    ServeRequest,
    ServiceOverloaded,
)
from tests.helpers import make_molecule_graphs


def _requests(count: int, seed: int = 0) -> list[ServeRequest]:
    graphs = make_molecule_graphs(count, seed=seed)
    return [ServeRequest(graph=g, key=str(i)) for i, g in enumerate(graphs)]


def test_atom_budget_flush():
    requests = _requests(6)
    total_atoms = sum(r.n_atoms for r in requests[:3])
    batcher = MicroBatcher(max_atoms=total_atoms, max_graphs=100, flush_interval_s=60.0)
    for request in requests[:3]:
        batcher.submit(request)
    batch = batcher.next_batch()  # must not wait for the 60s tick
    assert [r.key for r in batch] == ["0", "1", "2"]
    assert batcher.flush_reasons == {FLUSH_ATOMS: 1}
    assert batcher.pending_graphs == 0
    assert batcher.pending_atoms == 0


def test_graph_budget_flush_keeps_fifo_order():
    requests = _requests(5)
    batcher = MicroBatcher(max_atoms=10**9, max_graphs=2, flush_interval_s=60.0)
    for request in requests:
        batcher.submit(request)
    assert [r.key for r in batcher.next_batch()] == ["0", "1"]
    assert [r.key for r in batcher.next_batch()] == ["2", "3"]
    assert batcher.flush_reasons[FLUSH_GRAPHS] == 2


def test_timeout_tick_flushes_partial_batch():
    requests = _requests(2)
    batcher = MicroBatcher(max_atoms=10**9, max_graphs=100, flush_interval_s=0.02)
    start = time.monotonic()
    for request in requests:
        batcher.submit(request)
    batch = batcher.next_batch()
    waited = time.monotonic() - start
    assert [r.key for r in batch] == ["0", "1"]
    assert batcher.flush_reasons == {FLUSH_TIMEOUT: 1}
    assert waited >= 0.015  # actually honored the tick, within clock slop


def test_oversized_structure_ships_alone():
    requests = _requests(3)
    big = max(requests, key=lambda r: r.n_atoms)
    batcher = MicroBatcher(max_atoms=big.n_atoms - 1, max_graphs=100, flush_interval_s=0.0)
    batcher.submit(big)
    batch = batcher.next_batch()
    assert batch == [big]


def test_close_drains_then_returns_none():
    requests = _requests(3)
    batcher = MicroBatcher(max_atoms=10**9, max_graphs=100, flush_interval_s=60.0)
    for request in requests:
        batcher.submit(request)
    batcher.close()
    assert len(batcher.next_batch()) == 3
    assert batcher.next_batch() is None
    with pytest.raises(RuntimeError):
        batcher.submit(requests[0])


def test_blocked_consumer_wakes_on_submit():
    batcher = MicroBatcher(max_atoms=1, max_graphs=100, flush_interval_s=60.0)
    received = []

    def consume():
        received.append(batcher.next_batch())

    thread = threading.Thread(target=consume)
    thread.start()
    time.sleep(0.02)  # let the consumer block on an empty queue
    request = _requests(1)[0]
    batcher.submit(request)
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert received == [[request]]


def test_validates_parameters():
    with pytest.raises(ValueError):
        MicroBatcher(max_atoms=0)
    with pytest.raises(ValueError):
        MicroBatcher(max_graphs=0)
    with pytest.raises(ValueError):
        MicroBatcher(flush_interval_s=-1.0)
    with pytest.raises(ValueError):
        MicroBatcher(max_pending=-1)


def test_admission_control_rejects_at_the_bound():
    requests = _requests(4)
    # No consumer thread runs here, so rejection is deterministic even
    # with an immediate timeout tick (which keeps next_batch() instant).
    batcher = MicroBatcher(max_atoms=10**9, max_graphs=100, flush_interval_s=0.0, max_pending=2)
    batcher.submit(requests[0])
    batcher.submit(requests[1])
    with pytest.raises(ServiceOverloaded, match="queue full"):
        batcher.submit(requests[2])
    # The rejection left the queue untouched and was counted.
    assert batcher.pending_graphs == 2
    assert batcher.rejected == 1
    # Draining frees capacity: admission is about *current* depth.
    assert len(batcher.next_batch()) == 2
    batcher.submit(requests[2])
    assert batcher.pending_graphs == 1


def test_admission_control_disabled_by_default():
    requests = _requests(6)
    batcher = MicroBatcher(max_atoms=10**9, max_graphs=100, flush_interval_s=60.0)
    for request in requests:
        batcher.submit(request)
    assert batcher.pending_graphs == 6
    assert batcher.rejected == 0


def test_service_surfaces_overload_and_keeps_serving():
    """A rejected burst does not poison the service for later requests."""
    from repro.models import HydraModel, ModelConfig
    from repro.serving import PredictionService, ServiceConfig

    model = HydraModel(ModelConfig(hidden_dim=8, num_layers=1), seed=0)
    service = PredictionService(
        model,
        ServiceConfig(max_pending=1, flush_interval_s=0.5),
    )
    graphs = make_molecule_graphs(3, seed=5)
    service.start(workers=1)
    try:
        # The first submit fills the bound; the second (well inside the
        # 0.5 s flush tick, so nothing has drained) must be rejected.
        admitted = service.submit(graphs[0])
        with pytest.raises(ServiceOverloaded):
            service.submit(graphs[1])
        # Telemetry shows the rejection while the admitted request is
        # unaffected, and once it drains the service accepts new work.
        assert service.telemetry()["batching"]["rejected"] == 1
        assert admitted.wait(10.0).n_atoms == graphs[0].n_atoms
        result = service.predict(graphs[2])
        assert result.n_atoms == graphs[2].n_atoms
    finally:
        service.stop()
    assert service.telemetry()["batching"]["rejected"] == 1  # survives stop()


def test_cache_hits_bypass_admission_control():
    """A full queue must not reject requests the cache can answer."""
    from repro.models import HydraModel, ModelConfig
    from repro.serving import PredictionService, ServiceConfig

    model = HydraModel(ModelConfig(hidden_dim=8, num_layers=1), seed=0)
    service = PredictionService(model, ServiceConfig(max_pending=1, flush_interval_s=0.2))
    graphs = make_molecule_graphs(3, seed=6)
    warm = None
    service.start(workers=1)
    try:
        warm = service.predict(graphs[0])  # populate the cache
        # Fill the queue to its bound...
        service.submit(graphs[1])
        with pytest.raises(ServiceOverloaded):
            service.submit(graphs[2])
        # ...and the cached structure still resolves instantly.
        hit = service.submit(graphs[0])
        assert hit.done()
        assert hit.wait(0).cached
        assert hit.wait(0).energy == warm.energy
    finally:
        service.stop()
