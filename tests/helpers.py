"""Shared test utilities."""

from __future__ import annotations

import numpy as np

from repro.tensor.core import Tensor


def numeric_gradient(f, arrays: list[np.ndarray], index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f(*arrays)`` w.r.t. one arg."""
    base = arrays[index]
    grad = np.zeros_like(base)
    iterator = np.nditer(base, flags=["multi_index"])
    for _ in iterator:
        position = iterator.multi_index
        plus = [a.copy() for a in arrays]
        minus = [a.copy() for a in arrays]
        plus[index][position] += eps
        minus[index][position] -= eps
        grad[position] = (f(*plus) - f(*minus)) / (2.0 * eps)
    return grad


def gradcheck(f_tensor, shapes: list[tuple[int, ...]], seed: int = 0, tol: float = 1e-6) -> None:
    """Assert analytic gradients match central differences for all args.

    ``f_tensor`` maps Tensors to a scalar Tensor; everything runs in
    float64 so the comparison tolerance can be tight.
    """
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=shape) for shape in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True, dtype=np.float64) for a in arrays]
    out = f_tensor(*tensors)
    out.backward()

    def scalar(*raw: np.ndarray) -> float:
        wrapped = [Tensor(r, dtype=np.float64) for r in raw]
        return f_tensor(*wrapped).item()

    for index, tensor in enumerate(tensors):
        numeric = numeric_gradient(scalar, arrays, index)
        analytic = tensor.grad
        assert analytic is not None, f"missing gradient for argument {index}"
        error = np.abs(numeric - analytic).max()
        assert error < tol, f"gradcheck failed for arg {index}: max err {error:.3e}"


def make_molecule_graphs(count: int = 4, seed: int = 0):
    """Small labeled molecular graphs for model tests."""
    from repro.data.sources import ANI1xSource

    return ANI1xSource().sample(count, seed)


def make_periodic_graphs(count: int = 2, seed: int = 0):
    """Small labeled periodic graphs for model tests."""
    from repro.data.sources import MPTrjSource

    return MPTrjSource().sample(count, seed)
