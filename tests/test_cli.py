"""CLI coverage: every subcommand through ``main()`` with captured stdout."""

import pytest

from repro.cli import _parse_params, build_parser, main
from repro.models import HydraModel, ModelConfig
from repro.train import save_checkpoint


class TestParseParams:
    def test_suffixes(self):
        assert _parse_params("50M") == 50_000_000
        assert _parse_params("2B") == 2_000_000_000
        assert _parse_params("1.5k") == 1_500
        assert _parse_params("123") == 123
        assert _parse_params(" 10m ") == 10_000_000

    def test_junk_raises_clean_argparse_error(self):
        import argparse

        # "infM"/"nanB" parse as float but overflow/fail int() — they
        # must get the same clean error as plain junk.
        for junk in ("50X", "", "M", "fifty", "1..5M", "infM", "nanB"):
            with pytest.raises(argparse.ArgumentTypeError, match="invalid parameter count"):
                _parse_params(junk)


class TestExperiments:
    def test_lists_registered_artifacts(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "artifact" in out


class TestModel:
    def test_preset(self, capsys):
        assert main(["model", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "width=16" in out

    def test_param_target(self, capsys):
        assert main(["model", "50M"]) == 0
        out = capsys.readouterr().out
        assert "params" in out

    def test_junk_target_clean_error(self, capsys):
        assert main(["model", "50X"]) == 2
        captured = capsys.readouterr()
        assert "invalid parameter count '50X'" in captured.err
        assert "known presets" in captured.err
        assert "Traceback" not in captured.err


class TestCorpus:
    def test_summarizes_sources(self, capsys):
        assert main(["corpus", "12"]) == 0
        out = capsys.readouterr().out
        assert "ani1x" in out
        assert "TB at paper scale" in out


class TestPredict:
    def test_preset_prediction_table(self, capsys):
        import re

        assert main(["predict", "--graphs", "5", "--preset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "energy/atom" in out
        # generate_corpus rounds the source mixture up, so assert the
        # summary shape rather than an exact count.
        assert re.search(r"served \d+ structures in \d+ micro-batches", out)

    def test_checkpoint_prediction(self, capsys, tmp_path):
        model = HydraModel(ModelConfig(hidden_dim=8, num_layers=2), seed=0)
        path = save_checkpoint(tmp_path / "m.npz", model)
        assert main(["predict", "--graphs", "3", "--checkpoint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "served" in out and "micro-batches" in out

    def test_missing_checkpoint_clean_error(self, capsys, tmp_path):
        assert main(["predict", "--checkpoint", str(tmp_path / "nope.npz")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_preset_clean_error(self, capsys):
        assert main(["predict", "--preset", "gigantic"]) == 2
        assert "unknown preset" in capsys.readouterr().err

    def test_results_deterministic_across_runs(self, capsys):
        assert main(["predict", "--graphs", "4", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["predict", "--graphs", "4", "--seed", "7"]) == 0
        assert capsys.readouterr().out == first

    def test_input_file_with_json_output(self, capsys, tmp_path):
        """--input (wire structures) + --json emits a valid PredictResponse."""
        import json

        from repro.api import PredictResponse

        path = tmp_path / "structures.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "atomic_numbers": [1, 8, 1],
                        "positions": [
                            [0.0, 0.0, 0.0],
                            [0.96, 0.0, 0.0],
                            [1.2, 0.9, 0.0],
                        ],
                    }
                ]
            )
        )
        assert main(["predict", "--input", str(path), "--json"]) == 0
        response = PredictResponse.from_json_dict(json.loads(capsys.readouterr().out))
        assert response.model == "tiny"
        assert len(response.results) == 1
        assert response.results[0].n_atoms == 3
        assert response.results[0].forces.shape == (3, 3)

    def test_input_file_schema_error_is_clean(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('[{"atomic_numbers": [1], "positions": [[0, 0]]}]')
        assert main(["predict", "--input", str(path)]) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "positions" in captured.err
        assert "Traceback" not in captured.err

    def test_missing_input_file_is_clean(self, capsys, tmp_path):
        assert main(["predict", "--input", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestServe:
    def test_requires_a_mode(self, capsys):
        """Bare `repro serve` must name its two modes, not guess one."""
        assert main(["serve"]) == 2
        err = capsys.readouterr().err
        assert "--http" in err and "--selftest" in err

    def test_modes_are_mutually_exclusive(self, capsys):
        assert main(["serve", "--http", "0", "--selftest"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_http_bad_autotune_cache_fails_at_startup(self, capsys, tmp_path):
        """Misconfiguration must fail the process before it reports healthy."""
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "something-else"}')
        assert main(["serve", "--http", "0", "--autotune-cache", str(bad)]) == 2
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert "autotune" in captured.err
        assert "serving model" not in captured.out  # never claimed to be up

    def test_selftest_session_summary(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--selftest",
                    "--graphs",
                    "6",
                    "--requests",
                    "24",
                    "--workers",
                    "2",
                    "--flush-interval",
                    "0.002",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cache hits" in out
        assert "micro-batches" in out
        assert "throughput" in out
        assert "buffer pool" in out

    def test_selftest_repeat_requests_hit_cache(self, capsys):
        assert (
            main(
                [
                    "serve",
                    "--selftest",
                    "--graphs",
                    "4",
                    "--requests",
                    "32",
                    "--workers",
                    "1",
                    "--concurrency",
                    "4",
                    "--flush-interval",
                    "0.002",
                ]
            )
            == 0
        )
        import re

        out = capsys.readouterr().out
        # 32 requests over 4 unique structures with small waves: the
        # steady state is all-hits, so the session must report some.
        hits = int(re.search(r"\((\d+) cache hits", out).group(1))
        assert hits > 0

    def test_selftest_overload_is_a_clean_error(self, capsys):
        """A queue bound smaller than the wave rejects with a hint, not a traceback."""
        code = main(
            [
                "serve",
                "--selftest",
                "--graphs",
                "8",
                "--requests",
                "8",
                "--workers",
                "1",
                "--concurrency",
                "8",
                "--max-pending",
                "1",
                "--flush-interval",
                "0.5",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "server overloaded" in captured.err
        assert "--max-pending" in captured.err
        assert "Traceback" not in captured.err


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
