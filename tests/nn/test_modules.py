"""Module registration, traversal, and state-dict semantics."""

import numpy as np
import pytest

from repro.nn import MLP, Embedding, LayerNorm, Linear, Module, ModuleList, Parameter, Sequential
from repro.tensor import Tensor
from repro.tensor.rng import rng as make_rng


class _Net(Module):
    def __init__(self) -> None:
        super().__init__()
        generator = make_rng(0)
        self.first = Linear(4, 8, generator)
        self.second = Linear(8, 2, generator)
        self.scale = Parameter(np.ones((1,), dtype=np.float32))

    def forward(self, x):
        return self.second(self.first(x).tanh()) * self.scale


class TestModuleRegistration:
    def test_named_parameters_paths(self):
        names = [name for name, _ in _Net().named_parameters()]
        assert "first.weight" in names
        assert "second.bias" in names
        assert "scale" in names

    def test_num_parameters(self):
        net = _Net()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_zero_grad_clears_all(self):
        net = _Net()
        out = net(Tensor(np.ones((3, 4), dtype=np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_train_eval_propagates(self):
        net = _Net()
        net.eval()
        assert not net.first.training
        net.train()
        assert net.second.training


class TestStateDict:
    def test_roundtrip(self):
        net_a, net_b = _Net(), _Net()
        net_b.first.weight.data += 1.0
        net_b.load_state_dict(net_a.state_dict())
        for (_, pa), (_, pb) in zip(net_a.named_parameters(), net_b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        net = _Net()
        state = net.state_dict()
        state["scale"][...] = 42.0
        assert net.scale.data[0] == 1.0

    def test_missing_key_rejected(self):
        net = _Net()
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        net = _Net()
        state = net.state_dict()
        state["scale"] = np.ones(3)
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestContainers:
    def test_module_list_registration(self):
        generator = make_rng(0)
        layers = ModuleList(Linear(2, 2, generator) for _ in range(3))
        assert len(layers) == 3
        assert len(list(layers[0].named_parameters())) == 2
        parent = Module()
        parent.stack = layers
        assert len(list(parent.named_parameters())) == 6

    def test_sequential_forward(self):
        generator = make_rng(0)
        net = Sequential(Linear(3, 5, generator), Linear(5, 2, generator))
        out = net(Tensor(np.ones((4, 3), dtype=np.float32)))
        assert out.shape == (4, 2)
        assert len(net) == 2


class TestLayers:
    def test_linear_shapes_and_bias(self):
        layer = Linear(3, 7, make_rng(1))
        out = layer(Tensor(np.zeros((2, 3), dtype=np.float32)))
        assert out.shape == (2, 7)
        assert np.array_equal(out.numpy(), np.zeros((2, 7)))  # zero in, bias=0

    def test_linear_no_bias(self):
        layer = Linear(3, 7, make_rng(1), bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 21

    def test_mlp_depth_and_activation(self):
        mlp = MLP([4, 8, 8, 2], make_rng(2))
        assert len(mlp.layers) == 3
        out = mlp(Tensor(np.ones((5, 4), dtype=np.float32)))
        assert out.shape == (5, 2)

    def test_mlp_rejects_single_size(self):
        with pytest.raises(ValueError):
            MLP([4], make_rng(0))

    def test_layernorm_normalizes(self):
        norm = LayerNorm(16)
        x = Tensor((np.arange(32.0).reshape(2, 16) * 3.0 + 5.0).astype(np.float32))
        out = norm(x).numpy()
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_gradients_flow(self):
        norm = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 8)).astype(np.float32), requires_grad=True)
        (norm(x) ** 2).sum().backward()
        assert norm.gamma.grad is not None
        assert norm.beta.grad is not None
        assert x.grad is not None

    def test_embedding_lookup(self):
        table = Embedding(10, 4, make_rng(3))
        out = table(np.array([1, 1, 7]))
        assert out.shape == (3, 4)
        assert np.array_equal(out.numpy()[0], out.numpy()[1])

    def test_embedding_out_of_range(self):
        table = Embedding(10, 4, make_rng(3))
        with pytest.raises(IndexError):
            table(np.array([10]))

    def test_embedding_gradient_accumulates_duplicates(self):
        table = Embedding(5, 2, make_rng(4))
        out = table(np.array([2, 2, 2]))
        out.sum().backward()
        assert np.allclose(table.weight.grad[2], [3.0, 3.0])
        assert np.allclose(table.weight.grad[0], 0.0)


class TestLosses:
    def test_mse_value(self):
        from repro.nn import mse_loss

        a = Tensor(np.array([1.0, 2.0]))
        b = Tensor(np.array([3.0, 2.0]))
        assert mse_loss(a, b).item() == pytest.approx(2.0)

    def test_mae_value(self):
        from repro.nn import mae_loss

        a = Tensor(np.array([1.0, 2.0]))
        b = Tensor(np.array([3.0, 1.0]))
        assert mae_loss(a, b).item() == pytest.approx(1.5)

    def test_energy_force_weighting(self):
        from repro.nn import energy_force_loss

        e = Tensor(np.array([[1.0]]))
        f = Tensor(np.zeros((2, 3), dtype=np.float32))
        loss = energy_force_loss(e, e * 0.0, f, f + 1.0, energy_weight=2.0, force_weight=0.5)
        assert loss.item() == pytest.approx(2.0 * 1.0 + 0.5 * 1.0)
