"""Gradient checks and semantics for every engine primitive."""

import numpy as np
import pytest

from repro.tensor import Tensor, concat, gather, kernels, segment_sum, where
from tests.helpers import gradcheck


class TestArithmetic:
    def test_add(self):
        gradcheck(lambda a, b: (a + b).sum(), [(3, 4), (3, 4)])

    def test_add_broadcast_row(self):
        gradcheck(lambda a, b: ((a + b) ** 2).sum(), [(3, 4), (1, 4)])

    def test_add_broadcast_scalar_shape(self):
        gradcheck(lambda a, b: ((a + b) ** 2).sum(), [(3, 4), ()])

    def test_sub(self):
        gradcheck(lambda a, b: ((a - b) ** 2).sum(), [(2, 5), (2, 5)])

    def test_mul(self):
        gradcheck(lambda a, b: (a * b).sum(), [(3, 3), (3, 3)])

    def test_mul_broadcast_column(self):
        gradcheck(lambda a, b: (a * b).sum(), [(4, 3), (4, 1)])

    def test_self_mul(self):
        gradcheck(lambda a: (a * a * a).sum(), [(3, 3)])

    def test_div(self):
        gradcheck(lambda a, b: (a / (b * b + 2.0)).sum(), [(3, 3), (3, 3)])

    def test_neg(self):
        gradcheck(lambda a: (-a * a).sum(), [(4,)])

    def test_pow(self):
        gradcheck(lambda a: ((a * a + 1.0) ** 1.5).sum(), [(3, 2)])

    def test_pow_rejects_tensor_exponent(self):
        t = Tensor(np.ones(3))
        with pytest.raises(TypeError):
            t ** t  # noqa: B018

    def test_radd_rsub_rmul_rdiv(self):
        gradcheck(lambda a: (2.0 + a).sum() + (3.0 - a).sum(), [(3,)])
        gradcheck(lambda a: (2.0 * a).sum() + (3.0 / (a * a + 1.0)).sum(), [(3,)])


class TestPointwise:
    def test_exp(self):
        gradcheck(lambda a: a.exp().sum(), [(3, 3)])

    def test_log(self):
        gradcheck(lambda a: (a * a + 1.0).log().sum(), [(3, 3)])

    def test_sqrt(self):
        gradcheck(lambda a: (a * a + 1.0).sqrt().sum(), [(3, 3)])

    def test_tanh(self):
        gradcheck(lambda a: a.tanh().sum(), [(4, 2)])

    def test_sigmoid(self):
        gradcheck(lambda a: a.sigmoid().sum(), [(4, 2)])

    def test_relu_gradient_masks_negatives(self):
        t = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True, dtype=np.float64)
        t.relu().sum().backward()
        assert np.array_equal(t.grad, [0.0, 0.0, 1.0, 1.0])

    def test_abs(self):
        # Stay away from the kink at zero.
        gradcheck(lambda a: (a + 3.0).abs().sum(), [(3,)])


class TestMatmulShape:
    def test_matmul(self):
        gradcheck(lambda a, b: (a @ b).sum(), [(4, 3), (3, 5)])

    def test_matmul_chain(self):
        gradcheck(lambda a, b, c: ((a @ b) @ c).sum(), [(2, 3), (3, 4), (4, 2)])

    def test_matmul_rejects_1d(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones((3, 2)))

    def test_transpose(self):
        gradcheck(lambda a: (a.T @ a).sum(), [(4, 3)])

    def test_reshape(self):
        gradcheck(lambda a: (a.reshape(6) ** 2).sum(), [(2, 3)])

    def test_reshape_roundtrip_values(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.array_equal(t.reshape(3, 2).numpy().ravel(), np.arange(6.0))


class TestReductions:
    def test_sum_all(self):
        gradcheck(lambda a: (a.sum() ** 2), [(3, 4)])

    def test_sum_axis0(self):
        gradcheck(lambda a: (a.sum(axis=0) ** 2).sum(), [(3, 4)])

    def test_sum_axis1_keepdims(self):
        gradcheck(lambda a: (a.sum(axis=1, keepdims=True) * a).sum(), [(3, 4)])

    def test_mean_matches_manual(self):
        t = Tensor(np.arange(12.0).reshape(3, 4))
        assert t.mean().item() == pytest.approx(5.5)
        assert np.allclose(t.mean(axis=0).numpy(), np.arange(12.0).reshape(3, 4).mean(0))

    def test_mean_gradient(self):
        gradcheck(lambda a: (a.mean(axis=1) ** 2).sum(), [(3, 4)])


class TestIndexing:
    def test_slice_gradient(self):
        gradcheck(lambda a: (a[1:3, :2] ** 2).sum(), [(4, 3)])

    def test_integer_row(self):
        gradcheck(lambda a: (a[2] ** 2).sum(), [(4, 3)])

    def test_fancy_index_with_duplicates(self):
        idx = np.array([0, 0, 2])
        t = Tensor(np.ones((3, 2)), requires_grad=True, dtype=np.float64)
        t[idx].sum().backward()
        assert np.array_equal(t.grad[:, 0], [2.0, 0.0, 1.0])

    def test_ellipsis_slice(self):
        gradcheck(lambda a: (a[..., 1:] ** 2).sum(), [(3, 4)])


class TestGatherScatter:
    def test_gather_gradient(self):
        idx = np.array([0, 2, 2, 1])
        gradcheck(lambda a: (gather(a, idx) ** 2).sum(), [(3, 2)])

    def test_segment_sum_forward(self):
        data = Tensor(np.arange(8.0).reshape(4, 2))
        out = segment_sum(data, np.array([0, 1, 0, 1]), 2)
        assert np.array_equal(out.numpy(), [[4.0, 6.0], [8.0, 10.0]])

    def test_segment_sum_gradient(self):
        seg = np.array([0, 1, 1, 2, 0])
        gradcheck(lambda a: (segment_sum(a, seg, 3) ** 2).sum(), [(5, 3)])

    def test_segment_sum_empty_segment(self):
        data = Tensor(np.ones((2, 2)))
        out = segment_sum(data, np.array([0, 2]), 4)
        assert out.shape == (4, 2)
        assert np.array_equal(out.numpy()[1], [0.0, 0.0])

    def test_segment_sum_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((3, 2))), np.array([0, 1]), 2)

    def test_message_passing_composite(self):
        # gather -> transform -> scatter: the exact GNN pattern.
        src = np.array([0, 1, 2, 0])
        dst = np.array([1, 2, 0, 2])
        gradcheck(
            lambda h: (segment_sum(gather(h, src).tanh(), dst, 3) ** 2).sum(),
            [(3, 4)],
        )


class TestConcatWhere:
    def test_concat_axis0(self):
        gradcheck(lambda a, b: (concat([a, b], axis=0) ** 2).sum(), [(2, 3), (4, 3)])

    def test_concat_axis1(self):
        gradcheck(lambda a, b: (concat([a, b], axis=1) ** 2).sum(), [(3, 2), (3, 5)])

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            concat([])

    def test_where_gradient_routes_by_mask(self):
        mask = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        b = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        where(mask, a, b).sum().backward()
        assert np.array_equal(a.grad, [1.0, 0.0, 1.0])
        assert np.array_equal(b.grad, [0.0, 1.0, 0.0])


class TestFusedKernels:
    """Finite-difference checks for the hand-written kernel backwards."""

    SRC = np.array([0, 1, 2, 0, 2, 1])
    DST = np.array([1, 2, 0, 2, 1, 0])

    def test_linear_gradient(self):
        gradcheck(lambda x, w, b: (kernels.linear(x, w, b) ** 2).sum(), [(5, 3), (3, 4), (4,)])

    def test_linear_no_bias_gradient(self):
        gradcheck(lambda x, w: (kernels.linear(x, w) ** 2).sum(), [(5, 3), (3, 4)])

    def test_linear_broadcast_bias_gradient(self):
        # A (1, out) bias must receive a (1, out) gradient, like the
        # composed reference path's unbroadcast.
        gradcheck(lambda x, w, b: (kernels.linear(x, w, b) ** 2).sum(), [(5, 3), (3, 4), (1, 4)])

    def test_silu_gradient(self):
        gradcheck(lambda x: kernels.silu(x).sum(), [(4, 3)])

    def test_edge_message_linear_gradient(self):
        # The fused gather -> concat -> linear message-passing entry:
        # gradients flow to node features, edge features, weight and bias.
        gradcheck(
            lambda h, f, w, b: (
                kernels.edge_message_linear(h, f, w, b, self.SRC, self.DST) ** 2
            ).sum(),
            [(3, 2), (6, 3), (7, 4), (4,)],
        )

    def test_concat_linear_gradient(self):
        gradcheck(
            lambda a, b, w, bias: (kernels.concat_linear([a, b], w, bias) ** 2).sum(),
            [(4, 2), (4, 3), (5, 2), (2,)],
        )

    def test_mul_segment_sum_gradient(self):
        gradcheck(
            lambda a, b: (kernels.mul_segment_sum(a, b, self.DST, 3) ** 2).sum(),
            [(6, 3), (6, 1)],
        )

    def test_cached_segment_sum_gradient(self):
        gradcheck(
            lambda a: (kernels.segment_sum(a, self.DST, 3) ** 2).sum(),
            [(6, 4)],
        )

    def test_gather_diff_gradient(self):
        # The fused edge-geometry kernel differentiates through positions
        # and periodic shifts.
        gradcheck(
            lambda p, s: (kernels.gather_diff(p, s, self.SRC, self.DST) ** 2).sum(),
            [(3, 3), (6, 3)],
        )

    def test_gather_diff_no_shift_gradient(self):
        gradcheck(
            lambda p: (kernels.gather_diff(p, None, self.SRC, self.DST) ** 2).sum(),
            [(3, 3)],
        )

    def test_gather_diff_broadcast_shift_gradient(self):
        gradcheck(
            lambda p, s: (kernels.gather_diff(p, s, self.SRC, self.DST) ** 2).sum(),
            [(3, 3), (1, 3)],
        )

    def test_mixed_dtype_promotes_like_reference(self):
        # A float64 operand must promote the fused result exactly as the
        # composed primitive path would, never be quantized to float32.
        x = Tensor(np.ones((3, 2), dtype=np.float32))
        w = Tensor(np.ones((2, 2), dtype=np.float32))
        b64 = Tensor(np.full((2,), 0.5, dtype=np.float64), dtype=np.float64)
        fused = kernels.linear(x, w, b64)
        with kernels.fusion(False):
            reference = kernels.linear(x, w, b64)
        assert fused.dtype == reference.dtype == np.float64
        np.testing.assert_array_equal(fused.numpy(), reference.numpy())

    def test_fused_matches_unfused_edge_message(self):
        rng = np.random.default_rng(7)
        h = Tensor(rng.normal(size=(3, 2)))
        f = Tensor(rng.normal(size=(6, 3)))
        w = Tensor(rng.normal(size=(7, 4)))
        b = Tensor(rng.normal(size=(4,)))
        fused = kernels.edge_message_linear(h, f, w, b, self.SRC, self.DST)
        with kernels.fusion(False):
            reference = kernels.edge_message_linear(h, f, w, b, self.SRC, self.DST)
        np.testing.assert_allclose(fused.numpy(), reference.numpy(), atol=1e-5)
