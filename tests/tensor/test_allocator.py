"""Memory tracker semantics: categories, lifetimes, peaks, view handling."""

import gc

import numpy as np

from repro.tensor import (
    ACTIVATIONS,
    GRADIENTS,
    OTHER,
    WEIGHTS,
    MemoryTracker,
    Tensor,
    track_array,
    use_tracker,
)


class TestRegistration:
    def test_tensor_registers_bytes(self):
        tracker = MemoryTracker("t")
        with use_tracker(tracker):
            t = Tensor(np.zeros((10, 10), dtype=np.float32))
        assert tracker.current_total == 400
        del t
        gc.collect()
        assert tracker.current_total == 0

    def test_views_not_double_counted(self):
        tracker = MemoryTracker("t")
        base = np.zeros(100, dtype=np.float32)
        with use_tracker(tracker):
            track_array(base)
            track_array(base[10:50])  # view: must be ignored
            track_array(base)  # duplicate: must be ignored
        assert tracker.current_total == 400

    def test_category_context(self):
        tracker = MemoryTracker("t")
        with use_tracker(tracker):
            with tracker.category(WEIGHTS):
                keep = Tensor(np.zeros(10, dtype=np.float32))
            snapshot = tracker.snapshot()
        assert snapshot.by_category[WEIGHTS] == 40
        del keep

    def test_default_category_is_activations(self):
        tracker = MemoryTracker("t")
        with use_tracker(tracker):
            keep = Tensor(np.zeros(10, dtype=np.float32))
            assert tracker.snapshot().by_category[ACTIVATIONS] == 40
        del keep

    def test_recategorize_moves_bytes(self):
        tracker = MemoryTracker("t")
        array = np.zeros(10, dtype=np.float32)
        tracker.register(array, ACTIVATIONS)
        tracker.recategorize(array, WEIGHTS)
        snapshot = tracker.snapshot()
        assert snapshot.by_category[ACTIVATIONS] == 0
        assert snapshot.by_category[WEIGHTS] == 40

    def test_unknown_category_rejected(self):
        tracker = MemoryTracker("t")
        try:
            tracker.register(np.zeros(4), "gpu_cache")
        except ValueError as error:
            assert "gpu_cache" in str(error)
        else:
            raise AssertionError("expected ValueError")


class TestPeaks:
    def test_peak_exceeds_current_after_free(self):
        tracker = MemoryTracker("t")
        with use_tracker(tracker):
            big = Tensor(np.zeros(1000, dtype=np.float32))
            del big
            gc.collect()
            small = Tensor(np.zeros(10, dtype=np.float32))
        assert tracker.peak_total == 4000
        assert tracker.current_total == 40
        del small

    def test_peak_breakdown_snapshot(self):
        tracker = MemoryTracker("t")
        with use_tracker(tracker):
            with tracker.category(WEIGHTS):
                w = Tensor(np.zeros(100, dtype=np.float32))
            a = Tensor(np.zeros(300, dtype=np.float32))
        peak = tracker.peak()
        assert peak.by_category[WEIGHTS] == 400
        assert peak.by_category[ACTIVATIONS] == 1200
        assert peak.fraction(ACTIVATIONS) == 0.75
        del w, a

    def test_reset_peak_reseeds_from_current(self):
        tracker = MemoryTracker("t")
        with use_tracker(tracker):
            big = Tensor(np.zeros(1000, dtype=np.float32))
            del big
            gc.collect()
            keep = Tensor(np.zeros(10, dtype=np.float32))
            tracker.reset_peak()
        assert tracker.peak_total == 40
        del keep

    def test_percentages_sum_to_100(self):
        tracker = MemoryTracker("t")
        with use_tracker(tracker):
            with tracker.category(OTHER):
                keep = Tensor(np.zeros(7, dtype=np.float32))
            percentages = tracker.snapshot().as_percentages()
        assert abs(sum(percentages.values()) - 100.0) < 1e-9
        del keep


class TestTrainingLifecycle:
    def test_backward_registers_gradient_bytes(self):
        tracker = MemoryTracker("t")
        with use_tracker(tracker):
            t = Tensor(np.ones((50, 50), dtype=np.float32), requires_grad=True)
            (t * t).sum().backward()
            snapshot = tracker.snapshot()
        assert snapshot.by_category[GRADIENTS] >= t.grad.nbytes

    def test_activations_peak_then_release(self):
        tracker = MemoryTracker("t")
        with use_tracker(tracker):
            t = Tensor(np.ones((100, 100), dtype=np.float32), requires_grad=True)
            out = (t.tanh() * t.sigmoid()).sum()
            live_at_forward_end = tracker.snapshot().by_category[ACTIVATIONS]
            out.backward()
            gc.collect()
            live_after_backward = tracker.snapshot().by_category[ACTIVATIONS]
        # tanh + sigmoid + product + sum outputs were alive pre-backward.
        assert live_at_forward_end > t.data.nbytes * 2
        # The consumed graph must have released the intermediates.
        assert live_after_backward < live_at_forward_end

    def test_per_rank_trackers_are_independent(self):
        rank0, rank1 = MemoryTracker("r0"), MemoryTracker("r1")
        with use_tracker(rank0):
            a = Tensor(np.zeros(100, dtype=np.float32))
        with use_tracker(rank1):
            b = Tensor(np.zeros(200, dtype=np.float32))
        assert rank0.current_total == 400
        assert rank1.current_total == 800
        del a, b


class TestBufferPoolSnapshot:
    def test_snapshot_is_json_ready(self):
        import json

        from repro.tensor.allocator import BufferPool

        pool = BufferPool()
        kept = pool.acquire((8, 8), np.float32)  # miss, retained
        again = pool.acquire((8, 8), np.float32)  # busy -> second alloc
        del again
        reuse = pool.acquire((8, 8), np.float32)  # noqa: F841 — hit
        snap = pool.snapshot()
        assert snap["misses"] == 2
        assert snap["hits"] == 1
        assert snap["reserved_bytes"] >= kept.nbytes
        json.dumps(snap)  # must be serializable for serving telemetry

    def test_stats_as_dict_matches_counters(self):
        from repro.tensor.allocator import BufferPool

        pool = BufferPool()
        a = pool.acquire((4,), np.float32)
        del a
        pool.acquire((4,), np.float32)
        stats = pool.stats.as_dict()
        assert stats["hits"] == pool.stats.hits == 1
        assert stats["misses"] == pool.stats.misses == 1
        assert 0.0 <= stats["hit_rate"] <= 1.0
