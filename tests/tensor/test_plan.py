"""Traced execution plans: bit-exact replay, bucketing, invalidation.

The plan subsystem's contract is absolute: a replayed forward returns
the *same bits* the op-by-op ``no_grad`` path returns, for every
backend, every shape bucket, and every batch in a bucket — or the
compiler refuses and the model falls back to the unplanned path.
"""

import numpy as np
import pytest

from repro.graph.batch import collate
from repro.models import HydraModel, ModelConfig
from repro.tensor import kernels
from repro.tensor.allocator import SequentialArena
from repro.tensor.core import function_nodes_created
from repro.tensor.plan import PlanTraceError, compile_plan, plan_inputs, plan_key
from tests.helpers import make_molecule_graphs, make_periodic_graphs

CONFIG = ModelConfig(hidden_dim=16, num_layers=2)


def fresh_model(config: ModelConfig = CONFIG, seed: int = 0) -> HydraModel:
    return HydraModel(config, seed=seed)


def assert_same_outputs(a: dict, b: dict) -> None:
    np.testing.assert_array_equal(a["energy"], b["energy"])
    np.testing.assert_array_equal(a["forces"], b["forces"])


class TestBitExactReplay:
    def test_compile_then_replay_match_unplanned(self):
        model = fresh_model()
        batch = collate(make_molecule_graphs(3, seed=0))
        unplanned = model.serve(batch, plan=False)
        compiled = model.serve(batch, plan=True)  # first call: compile
        replayed = model.serve(batch, plan=True)  # second call: replay
        assert_same_outputs(unplanned, compiled)
        assert_same_outputs(unplanned, replayed)
        assert model.plans.stats.compiled == 1
        assert model.plans.stats.hits == 1

    def test_replay_on_different_batch_in_same_bucket(self):
        """The plan must not bake any batch's data: same bucket, new atoms."""
        model = fresh_model()
        first = collate(make_molecule_graphs(3, seed=0))
        second = collate(make_molecule_graphs(3, seed=7))
        assert plan_key(first) == plan_key(second)  # the premise of the test
        model.serve(first, plan=True)
        unplanned = model.serve(second, plan=False)
        replayed = model.serve(second, plan=True)
        assert model.plans.stats.hits >= 1
        assert_same_outputs(unplanned, replayed)

    def test_periodic_structures_replay_bit_exact(self):
        model = fresh_model()
        batch = collate(make_periodic_graphs(2, seed=1))
        unplanned = model.serve(batch, plan=False)
        model.serve(batch, plan=True)
        assert_same_outputs(unplanned, model.serve(batch, plan=True))

    @pytest.mark.parametrize("backend", ["numpy", "parallel", "auto"])
    def test_backends_replay_bit_exact(self, backend):
        model = fresh_model()
        batch = collate(make_molecule_graphs(3, seed=2))
        with kernels.use_backend(backend):
            unplanned = model.serve(batch, plan=False)
            model.serve(batch, plan=True)
            replayed = model.serve(batch, plan=True)
        assert_same_outputs(unplanned, replayed)

    def test_attention_and_layernorm_variants_replay(self):
        config = ModelConfig(hidden_dim=16, num_layers=2, attention=True, layer_norm=True)
        model = fresh_model(config, seed=3)
        batch = collate(make_molecule_graphs(2, seed=3))
        unplanned = model.serve(batch, plan=False)
        model.serve(batch, plan=True)
        assert_same_outputs(unplanned, model.serve(batch, plan=True))

    def test_fusion_disabled_reference_path_replays(self):
        model = fresh_model()
        batch = collate(make_molecule_graphs(2, seed=4))
        with kernels.fusion(False):
            unplanned = model.serve(batch, plan=False)
            model.serve(batch, plan=True)
            replayed = model.serve(batch, plan=True)
        assert_same_outputs(unplanned, replayed)

    def test_predict_wraps_replayed_arrays(self):
        model = fresh_model()
        batch = collate(make_molecule_graphs(2, seed=5))
        expected = model.predict(batch, plan=False)
        model.predict(batch, plan=True)
        planned = model.predict(batch, plan=True)
        np.testing.assert_array_equal(planned["energy"].numpy(), expected["energy"].numpy())
        np.testing.assert_array_equal(planned["forces"].numpy(), expected["forces"].numpy())

    def test_replay_creates_no_function_nodes(self):
        model = fresh_model()
        batch = collate(make_molecule_graphs(2, seed=6))
        model.serve(batch, plan=True)  # compile outside the measurement
        before = function_nodes_created()
        model.serve(batch, plan=True)
        assert function_nodes_created() == before


class TestBucketing:
    def test_bucket_miss_recompiles(self):
        model = fresh_model()
        small = collate(make_molecule_graphs(1, seed=0))
        large = collate(make_molecule_graphs(6, seed=0))
        assert plan_key(small) != plan_key(large)
        model.serve(small, plan=True)
        model.serve(large, plan=True)
        assert model.plans.stats.compiled == 2
        assert len(model.plans) == 2

    def test_key_tracks_backend_and_fusion(self):
        batch = collate(make_molecule_graphs(2, seed=0))
        base = plan_key(batch)
        with kernels.use_backend("parallel"):
            assert plan_key(batch) != base
        with kernels.fusion(False):
            assert plan_key(batch) != base

    def test_replayed_outputs_are_owned(self):
        """A later replay must not mutate results already handed out."""
        model = fresh_model()
        first = collate(make_molecule_graphs(3, seed=0))
        second = collate(make_molecule_graphs(3, seed=7))
        model.serve(first, plan=True)
        result = model.serve(first, plan=True)
        energy, forces = result["energy"].copy(), result["forces"].copy()
        model.serve(second, plan=True)  # same bucket: same arena slots
        np.testing.assert_array_equal(result["energy"], energy)
        np.testing.assert_array_equal(result["forces"], forces)


class TestInvalidation:
    def test_in_place_parameter_updates_flow_into_plans(self):
        """Optimizer-style ``data -=`` updates need no recompilation."""
        model = fresh_model()
        batch = collate(make_molecule_graphs(2, seed=0))
        model.serve(batch, plan=True)
        for parameter in model.parameters():
            parameter.data *= 1.01
        unplanned = model.serve(batch, plan=False)
        assert_same_outputs(unplanned, model.serve(batch, plan=True))
        assert model.plans.stats.compiled == 1  # no recompile happened

    def test_rebound_parameter_storage_invalidates(self):
        model = fresh_model()
        batch = collate(make_molecule_graphs(2, seed=0))
        model.serve(batch, plan=True)
        parameter = model.parameters()[0]
        parameter.data = (parameter.data * 2.0).copy()
        unplanned = model.serve(batch, plan=False)
        assert_same_outputs(unplanned, model.serve(batch, plan=True))
        assert model.plans.stats.compiled == 2  # the rebind forced a recompile

    def test_invalidate_clears_plans(self):
        model = fresh_model()
        batch = collate(make_molecule_graphs(2, seed=0))
        model.serve(batch, plan=True)
        assert len(model.plans) == 1
        model.plans.invalidate()
        assert len(model.plans) == 0


class TestFallback:
    def test_checkpointed_model_falls_back_to_unplanned(self):
        config = ModelConfig(hidden_dim=16, num_layers=2, checkpoint_activations=True)
        model = fresh_model(config)
        batch = collate(make_molecule_graphs(2, seed=0))
        unplanned = model.serve(batch, plan=False)
        served = model.serve(batch, plan=True)
        assert_same_outputs(unplanned, served)
        assert model.plans.stats.fallbacks >= 1
        assert len(model.plans) == 0
        # The fallback is remembered: no repeated compile attempts.
        model.serve(batch, plan=True)
        assert model.plans.stats.compiled == 0

    def test_compile_refuses_checkpointing_directly(self):
        config = ModelConfig(hidden_dim=16, num_layers=2, checkpoint_activations=True)
        model = fresh_model(config)
        batch = collate(make_molecule_graphs(2, seed=0))
        with pytest.raises(PlanTraceError, match="checkpointing"):
            compile_plan(model, batch)

    def test_out_of_range_species_raise_like_embedding(self):
        model = fresh_model()
        batch = collate(make_molecule_graphs(2, seed=0))
        model.serve(batch, plan=True)
        batch.atomic_numbers[0] = model.config.vocab_size + 7
        with pytest.raises(IndexError, match="out of range"):
            model.serve(batch, plan=True)
        with pytest.raises(IndexError, match="out of range"):
            model.serve(batch, plan=False)


class TestPlanInternals:
    def test_plan_freezes_kernel_backends_into_labels(self):
        model = fresh_model()
        batch = collate(make_molecule_graphs(2, seed=0))
        plan, _ = compile_plan(model, batch)
        labels = plan.labels()
        assert any(label.startswith("EdgeMessageLinear[") for label in labels)
        assert any(label.startswith("FusedSiLU[") for label in labels)
        # Frozen labels name a concrete backend, never the auto proxy.
        assert not any("[auto]" in label for label in labels)

    def test_arena_schedule_recycles_slots(self):
        """Liveness packing must reuse arena slots across steps."""
        model = fresh_model(ModelConfig(hidden_dim=16, num_layers=3))
        batch = collate(make_molecule_graphs(2, seed=0))
        plan, _ = compile_plan(model, batch)
        positions = sum(len(slots) for slots in plan._step_slots.values())
        assert positions > 0
        assert plan._arena_slots < positions

    def test_replay_source_is_inspectable(self):
        model = fresh_model()
        batch = collate(make_molecule_graphs(2, seed=0))
        plan, _ = compile_plan(model, batch)
        assert plan.source.startswith("def _replay(")
        assert "return {'energy': " in plan.source

    def test_unregistered_batch_shaped_constant_is_refused(self):
        """The guard that keeps batch data out of baked constants."""
        from repro.tensor.plan import PlanTracer

        tracer = PlanTracer(dims={"num_nodes": 5}, guard_dims=(5, 8), constants=[])
        rogue = np.zeros((5, 3), dtype=np.float32)

        class FakeOp:
            @staticmethod
            def infer(value):
                return value * 2.0

        with pytest.raises(PlanTraceError, match="batch-shaped"):
            tracer.record(FakeOp, (rogue,), {})

    def test_sequential_arena_off_schedule_acquires_fall_back(self):
        arena = SequentialArena()
        arena.configure({0: [0]}, 1)
        arena.begin_step(0)
        first = arena.acquire((4, 4), np.float32)
        extra = arena.acquire((2, 2), np.float32)  # beyond the step's table
        unmarked = arena.acquire((3,), np.float32)  # after an unknown step
        arena.begin_step(5)  # a step with no learned acquires
        orphan = arena.acquire((2,), np.float32)
        for array, fill in ((first, 1.0), (extra, 2.0), (unmarked, 3.0), (orphan, 4.0)):
            array[...] = fill
        assert (first == 1.0).all() and (extra == 2.0).all()
        assert (unmarked == 3.0).all() and (orphan == 4.0).all()

    def test_sequential_arena_grows_and_memoizes(self):
        arena = SequentialArena()
        arena.configure({0: [0], 2: [0]}, 1)
        arena.begin_step(0)
        a = arena.acquire((4,), np.float32)
        arena.begin_step(0)
        b = arena.acquire((4,), np.float32)
        assert b is a  # memoized view on a same-shape replay
        arena.begin_step(0)
        big = arena.acquire((64,), np.float32)  # forces a regrow
        assert big.shape == (64,)

    def test_parallel_delegation_branch_flip_stays_bit_exact(self):
        """Regression: a frozen parallel kernel may delegate to numpy
        below the row floor on one batch and shard on another batch of
        the same bucket, changing its scratch-acquire count mid-plan.
        The step-addressed arena must contain that divergence — outputs
        stay bit-identical to the unplanned path, never silently wrong.
        """
        from repro.tensor import parallel

        first = collate(make_molecule_graphs(3, seed=0))
        second = collate(make_molecule_graphs(3, seed=7))
        assert plan_key(first) == plan_key(second)
        low, high = sorted((first.num_edges, second.num_edges))
        assert low < high  # need the edge counts to straddle the floor
        # Put the delegation threshold (2 * min_rows) strictly between
        # the two batches' edge-row counts.
        parallel.configure(max_workers=4, min_rows=(low + high) // 4 + 1)
        try:
            model = fresh_model()
            with kernels.use_backend("parallel"):
                for batch in (first, second):
                    unplanned = model.serve(batch, plan=False)
                    model.serve(batch, plan=True)
                    replayed = model.serve(batch, plan=True)
                    assert_same_outputs(unplanned, replayed)
        finally:
            parallel.configure(None, None)

    def test_plan_inputs_match_unplanned_geometry(self):
        model = fresh_model()
        batch = collate(make_molecule_graphs(2, seed=0))
        inputs, dims = plan_inputs(model, batch)
        assert dims == {"num_nodes": batch.num_nodes, "num_graphs": batch.num_graphs}
        assert inputs["rbf"].shape == (batch.num_edges, model.config.num_rbf)
        assert inputs["inv_counts"].shape == (batch.num_graphs, 1)

    def test_telemetry_counters_are_json_ready(self):
        import json

        model = fresh_model()
        batch = collate(make_molecule_graphs(2, seed=0))
        model.serve(batch, plan=True)
        model.serve(batch, plan=True)
        payload = model.plans.telemetry()
        json.dumps(payload)
        assert payload["plans_compiled"] == 1
        assert payload["plan_hits"] == 1
        assert payload["plan_misses"] == 1
        assert payload["cached_plans"] == 1
        assert 0.0 < payload["plan_hit_rate"] <= 1.0
