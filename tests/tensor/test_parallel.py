"""The ``parallel`` backend: sharded kernels vs the numpy reference."""

import numpy as np
import pytest

from repro.graph.batch import collate
from repro.models import HydraModel, ModelConfig
from repro.tensor import kernels, parallel
from repro.tensor.core import Tensor, function_nodes_created, no_grad
from tests.helpers import make_molecule_graphs, make_periodic_graphs


@pytest.fixture(autouse=True)
def _forced_sharding():
    """Force multi-shard execution even on single-core hosts.

    4 workers and an 8-row shard floor make every test input below
    actually split, so the sharded code paths (not the numpy delegation)
    are what gets exercised.
    """
    parallel.configure(max_workers=4, min_rows=8)
    yield
    parallel.configure()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def _graph_arrays(rng, nodes=60, edges=400, width=16, feat=8, out=12):
    h = rng.standard_normal((nodes, width)).astype(np.float32)
    feat_arr = rng.standard_normal((edges, feat)).astype(np.float32)
    weight = rng.standard_normal((2 * width + feat, out)).astype(np.float32)
    bias = rng.standard_normal((out,)).astype(np.float32)
    src = rng.integers(0, nodes, edges).astype(np.int64)
    dst = rng.integers(0, nodes, edges).astype(np.int64)
    return h, feat_arr, weight, bias, src, dst


class TestSharding:
    def test_small_inputs_single_span(self):
        parallel.configure(max_workers=4, min_rows=1000)
        assert parallel.row_shards(999) == [(0, 999)]

    def test_spans_partition_range(self):
        spans = parallel.row_shards(1000)
        assert len(spans) > 1
        assert spans[0][0] == 0 and spans[-1][1] == 1000
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert stop == start

    def test_single_worker_never_shards(self):
        parallel.configure(max_workers=1, min_rows=1)
        assert parallel.row_shards(10**6) == [(0, 10**6)]

    def test_run_sharded_propagates_errors(self):
        def boom(start, stop):
            if start > 0:
                raise ValueError("shard failed")
            return stop

        with pytest.raises(ValueError, match="shard failed"):
            parallel.run_sharded(boom, parallel.row_shards(1000))

    def test_worker_threads_run_inline(self):
        # A sharded call issued *from* a worker thread must not re-shard
        # (re-entrant submission can deadlock a saturated executor).
        spans_seen = []

        def nested(start, stop):
            spans_seen.append(parallel.row_shards(512))
            return None

        parallel.run_sharded(nested, parallel.row_shards(1000))
        # Shard 0 runs on the caller (may split); executor shards may not.
        assert any(spans == [(0, 512)] for spans in spans_seen)


class TestKernelEquivalence:
    """Every sharded forward/backward must match the numpy reference."""

    def test_linear(self, rng):
        x = rng.standard_normal((300, 24)).astype(np.float32)
        w = rng.standard_normal((24, 16)).astype(np.float32)
        b = rng.standard_normal((16,)).astype(np.float32)
        ref = kernels.get_kernel("linear", "numpy")
        par = kernels.get_kernel("linear", "parallel")
        np.testing.assert_allclose(par.forward(x, w, b), ref.forward(x, w, b), atol=1e-6)
        grad = rng.standard_normal((300, 16)).astype(np.float32)
        for got, expected in zip(
            par.backward(grad, x, w, b.shape), ref.backward(grad, x, w, b.shape)
        ):
            # Partial-sum reduction reorders float32 accumulation, so the
            # weight gradient matches to rounding, not bitwise.
            np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-4)

    def test_silu(self, rng):
        x = rng.standard_normal((257, 33)).astype(np.float32)
        ref_out, ref_sig = kernels.get_kernel("silu", "numpy").forward(x)
        par_out, par_sig = kernels.get_kernel("silu", "parallel").forward(x)
        np.testing.assert_allclose(par_out, ref_out, atol=1e-6)
        np.testing.assert_allclose(par_sig, ref_sig, atol=1e-6)
        grad = rng.standard_normal(x.shape).astype(np.float32)
        np.testing.assert_allclose(
            kernels.get_kernel("silu", "parallel").backward(grad, x, par_sig),
            kernels.get_kernel("silu", "numpy").backward(grad, x, ref_sig),
            atol=1e-6,
        )

    def test_edge_message_linear(self, rng):
        h, feat, weight, bias, src, dst = _graph_arrays(rng)
        ref = kernels.get_kernel("edge_message_linear", "numpy")
        par = kernels.get_kernel("edge_message_linear", "parallel")
        np.testing.assert_allclose(
            par.forward(h, feat, weight, bias, src, dst),
            ref.forward(h, feat, weight, bias, src, dst),
            atol=1e-5,
        )
        grad = rng.standard_normal((src.shape[0], weight.shape[1])).astype(np.float32)
        got = par.backward(grad, h, feat, weight, src, dst, bias.shape)
        expected = ref.backward(grad, h, feat, weight, src, dst, bias.shape)
        for g, e in zip(got, expected):
            np.testing.assert_allclose(g, e, atol=1e-4)

    def test_concat_linear(self, rng):
        parts = [
            rng.standard_normal((220, w)).astype(np.float32) for w in (8, 16, 4)
        ]
        weight = rng.standard_normal((28, 10)).astype(np.float32)
        bias = rng.standard_normal((10,)).astype(np.float32)
        ref = kernels.get_kernel("concat_linear", "numpy")
        par = kernels.get_kernel("concat_linear", "parallel")
        np.testing.assert_allclose(
            par.forward(parts, weight, bias), ref.forward(parts, weight, bias), atol=1e-5
        )
        grad = rng.standard_normal((220, 10)).astype(np.float32)
        needs = ([True, True, True], True, True)
        got_parts, got_w, got_b = par.backward(grad, parts, weight, bias.shape, needs)
        exp_parts, exp_w, exp_b = ref.backward(grad, parts, weight, bias.shape, needs)
        for g, e in zip(got_parts, exp_parts):
            np.testing.assert_allclose(g, e, atol=1e-5)
        np.testing.assert_allclose(got_w, exp_w, atol=1e-4)
        np.testing.assert_allclose(got_b, exp_b, atol=1e-5)

    def test_segment_sum(self, rng):
        values = rng.standard_normal((500, 7)).astype(np.float32)
        segments = np.sort(rng.integers(0, 40, 500)).astype(np.int64)
        ref = kernels.get_kernel("segment_sum", "numpy")
        par = kernels.get_kernel("segment_sum", "parallel")
        np.testing.assert_allclose(
            par.forward(values, segments, 40), ref.forward(values, segments, 40), atol=1e-5
        )
        grad = rng.standard_normal((40, 7)).astype(np.float32)
        np.testing.assert_array_equal(
            par.backward(grad, segments), ref.backward(grad, segments)
        )

    def test_mul_segment_sum(self, rng):
        a = rng.standard_normal((480, 3)).astype(np.float32)
        b = rng.standard_normal((480, 1)).astype(np.float32)
        segments = np.sort(rng.integers(0, 33, 480)).astype(np.int64)
        ref = kernels.get_kernel("mul_segment_sum", "numpy")
        par = kernels.get_kernel("mul_segment_sum", "parallel")
        np.testing.assert_allclose(
            par.forward(a, b, segments, 33), ref.forward(a, b, segments, 33), atol=1e-5
        )
        grad = rng.standard_normal((33, 3)).astype(np.float32)
        for g, e in zip(
            par.backward(grad, a, b, segments), ref.backward(grad, a, b, segments)
        ):
            np.testing.assert_allclose(g, e, atol=1e-5)

    def test_gather_diff_and_geometry(self, rng):
        positions = rng.standard_normal((90, 3)).astype(np.float32)
        shift = rng.standard_normal((600, 3)).astype(np.float32)
        src = rng.integers(0, 90, 600).astype(np.int64)
        dst = rng.integers(0, 90, 600).astype(np.int64)
        ref = kernels.get_kernel("gather_diff", "numpy")
        par = kernels.get_kernel("gather_diff", "parallel")
        np.testing.assert_allclose(
            par.forward(positions, shift, src, dst),
            ref.forward(positions, shift, src, dst),
            atol=1e-6,
        )
        ref_v, ref_d = ref.geometry(positions, shift, src, dst)
        par_v, par_d = par.geometry(positions, shift, src, dst)
        np.testing.assert_allclose(par_v, ref_v, atol=1e-6)
        np.testing.assert_allclose(par_d, ref_d, atol=1e-5)
        grad = rng.standard_normal((600, 3)).astype(np.float32)
        got = par.backward(grad, src, dst, 90, shift.shape)
        expected = ref.backward(grad, src, dst, 90, shift.shape)
        np.testing.assert_allclose(got[0], expected[0], atol=1e-4)
        np.testing.assert_allclose(got[1], expected[1], atol=1e-6)

    def test_mixed_dtype_delegates_to_numpy(self, rng):
        # float64 bias on float32 weights: the promoting cold path.
        x = rng.standard_normal((300, 8)).astype(np.float32)
        w = rng.standard_normal((8, 4)).astype(np.float32)
        b = rng.standard_normal((4,)).astype(np.float64)
        out = kernels.get_kernel("linear", "parallel").forward(x, w, b)
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, x @ w + b, atol=1e-6)


class TestModelEquivalence:
    def _batch(self):
        return collate(make_molecule_graphs(4, seed=5) + make_periodic_graphs(2, seed=5))

    def test_training_losses_match_numpy(self):
        batch = self._batch()
        target_e = np.zeros((batch.num_graphs, 1), dtype=np.float32)
        target_f = np.zeros((batch.num_nodes, 3), dtype=np.float32)

        def losses(backend: str) -> list[float]:
            from repro.optim import Adam

            model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=3)
            optimizer = Adam(model.parameters(), lr=1e-3)
            out = []
            with kernels.use_backend(backend):
                for _ in range(3):
                    model.zero_grad()
                    loss = model.loss(model(batch), target_e, target_f)
                    loss.backward()
                    optimizer.step()
                    out.append(loss.item())
            return out

        assert losses("parallel") == pytest.approx(losses("numpy"), rel=1e-4)

    def test_predict_matches_numpy(self):
        batch = self._batch()
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
        reference = model.predict(batch)
        with kernels.use_backend("parallel"):
            predicted = model.predict(batch)
        for key in ("energy", "forces"):
            np.testing.assert_allclose(
                predicted[key].numpy(), reference[key].numpy(), atol=1e-5
            )

    def test_no_function_nodes_under_parallel_no_grad(self):
        """The no-node inference invariant holds on the parallel backend."""
        batch = self._batch()
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
        with kernels.use_backend("parallel"):
            model.predict(batch)  # warm executor + shard caches
            before = function_nodes_created()
            with no_grad():
                predictions = model(batch)
            assert function_nodes_created() == before
        assert predictions["energy"].requires_grad is False
        assert predictions["energy"]._ctx is None

    def test_grad_tensors_flow_through_parallel_kernels(self):
        # End-to-end autograd through the dispatch wrappers on the
        # parallel backend: gradients exist and match numpy's.
        x = Tensor(np.random.default_rng(0).standard_normal((64, 8)).astype(np.float32),
                   requires_grad=True)
        w = Tensor(np.random.default_rng(1).standard_normal((8, 4)).astype(np.float32),
                   requires_grad=True)

        def run(backend):
            x.zero_grad()
            w.zero_grad()
            with kernels.use_backend(backend):
                out = kernels.silu(kernels.linear(x, w))
                out.sum().backward()
            return np.array(x.grad), np.array(w.grad)

        gx_par, gw_par = run("parallel")
        gx_np, gw_np = run("numpy")
        np.testing.assert_allclose(gx_par, gx_np, atol=1e-5)
        np.testing.assert_allclose(gw_par, gw_np, atol=1e-5)
