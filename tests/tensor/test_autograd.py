"""Autograd graph mechanics: accumulation, reuse, no_grad, lifetimes."""

import numpy as np
import pytest

from repro.tensor import Tensor, enable_grad, grad_enabled, no_grad


class TestBackwardBasics:
    def test_scalar_backward_default_grad(self):
        t = Tensor(np.array(3.0), requires_grad=True, dtype=np.float64)
        (t * t).backward()
        assert t.grad == pytest.approx(6.0)

    def test_nonscalar_backward_requires_grad_argument(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True, dtype=np.float64)
        (t * 2.0).backward(np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(t.grad, [2.0, 4.0, 6.0])

    def test_backward_grad_shape_mismatch(self):
        t = Tensor(np.ones(3), requires_grad=True)
        out = t * 2.0
        with pytest.raises(ValueError):
            out.backward(np.ones(4))

    def test_backward_on_no_grad_tensor_raises(self):
        t = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            (t * 2.0).backward(np.ones(3))

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.array(2.0), requires_grad=True, dtype=np.float64)
        (t * t).backward()
        (t * t).backward()
        assert t.grad == pytest.approx(8.0)

    def test_diamond_graph_accumulation(self):
        # y = f(x) used twice: gradient must sum both paths.
        x = Tensor(np.array(0.5), requires_grad=True, dtype=np.float64)
        y = x.tanh()
        out = y * y + y * 3.0
        out.backward()
        expected = (2.0 * np.tanh(0.5) + 3.0) * (1.0 - np.tanh(0.5) ** 2)
        assert x.grad == pytest.approx(expected, rel=1e-10)

    def test_retain_grad_on_intermediate(self):
        x = Tensor(np.array(2.0), requires_grad=True, dtype=np.float64)
        y = (x * 3.0).retain_grad()
        (y * y).backward()
        assert y.grad == pytest.approx(12.0)

    def test_intermediate_grad_not_kept_by_default(self):
        x = Tensor(np.array(2.0), requires_grad=True, dtype=np.float64)
        y = x * 3.0
        (y * y).backward()
        assert y.grad is None

    def test_graph_freed_after_backward(self):
        x = Tensor(np.array(2.0), requires_grad=True, dtype=np.float64)
        y = x * 3.0
        out = y * y
        out.backward()
        assert out._ctx is None  # graph consumed


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._ctx is None

    def test_no_grad_restores_state(self):
        assert grad_enabled()
        with no_grad():
            assert not grad_enabled()
            with enable_grad():
                assert grad_enabled()
            assert not grad_enabled()
        assert grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(2), requires_grad=True, dtype=np.float64)
        y = (x * 2.0).detach()
        assert not y.requires_grad
        z = Tensor(np.ones(2), requires_grad=True, dtype=np.float64)
        (y * z).sum().backward()
        assert x.grad is None
        assert np.array_equal(z.grad, [2.0, 2.0])

    def test_detach_shares_storage(self):
        x = Tensor(np.ones(2))
        y = x.detach()
        assert y.numpy() is x.numpy()


class TestDtypes:
    def test_float64_preserved_through_ops(self):
        t = Tensor(np.ones(3), dtype=np.float64)
        assert (t * t).sum().dtype == np.float64

    def test_default_dtype_for_lists(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32

    def test_int_input_cast_to_default(self):
        assert Tensor(np.arange(3)).dtype == np.float32

    def test_scalar_coercion_matches_dtype(self):
        t = Tensor(np.ones(3), dtype=np.float64)
        assert (t + 1.0).dtype == np.float64


class TestRepr:
    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(np.ones(2), requires_grad=True))
        assert "shape=(2,)" in repr(Tensor(np.ones(2)))

    def test_len_and_size(self):
        t = Tensor(np.ones((4, 2)))
        assert len(t) == 4
        assert t.size == 8
        assert t.ndim == 2
