"""Activation checkpointing: gradient equivalence + memory reduction."""

import numpy as np
import pytest

from repro.tensor import (
    MemoryTracker,
    Tensor,
    checkpoint,
    checkpoint_multi,
    no_grad,
    use_tracker,
)


def _two_layer(weight_a: Tensor, weight_b: Tensor):
    def fn(x: Tensor) -> Tensor:
        return ((x @ weight_a).tanh() @ weight_b).sigmoid()

    return fn


class TestCheckpointEquivalence:
    def test_gradients_match_uncheckpointed(self):
        rng = np.random.default_rng(0)
        wa = Tensor(rng.normal(size=(4, 8)), requires_grad=True, dtype=np.float64)
        wb = Tensor(rng.normal(size=(8, 3)), requires_grad=True, dtype=np.float64)
        x = Tensor(rng.normal(size=(5, 4)), requires_grad=True, dtype=np.float64)
        fn = _two_layer(wa, wb)

        checkpoint(fn, x).sum().backward()
        grads_ckpt = (x.grad.copy(), wa.grad.copy(), wb.grad.copy())

        x.zero_grad(), wa.zero_grad(), wb.zero_grad()
        fn(x).sum().backward()
        for a, b in zip(grads_ckpt, (x.grad, wa.grad, wb.grad)):
            assert np.allclose(a, b, atol=1e-12)

    def test_forward_values_match(self):
        rng = np.random.default_rng(1)
        wa = Tensor(rng.normal(size=(4, 8)), requires_grad=True, dtype=np.float64)
        wb = Tensor(rng.normal(size=(8, 3)), requires_grad=True, dtype=np.float64)
        x = Tensor(rng.normal(size=(5, 4)), dtype=np.float64)
        fn = _two_layer(wa, wb)
        assert np.allclose(checkpoint(fn, x).numpy(), fn(x).numpy())

    def test_parameters_only_segment(self):
        # No input requires grad; closure parameters still get gradients.
        rng = np.random.default_rng(2)
        w = Tensor(rng.normal(size=(3, 3)), requires_grad=True, dtype=np.float64)
        x = Tensor(rng.normal(size=(2, 3)), dtype=np.float64)
        checkpoint(lambda inp: (inp @ w).tanh(), x).sum().backward()
        assert w.grad is not None

    def test_under_no_grad_runs_plain(self):
        x = Tensor(np.ones((2, 2)))
        with no_grad():
            out = checkpoint(lambda t: t * 2.0, x)
        assert out._ctx is None
        assert np.array_equal(out.numpy(), 2.0 * np.ones((2, 2)))

    def test_non_tensor_return_rejected(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            checkpoint(lambda t: (t, t), x)


class TestCheckpointMulti:
    def test_two_output_equivalence(self):
        rng = np.random.default_rng(3)
        w = Tensor(rng.normal(size=(4, 4)), requires_grad=True, dtype=np.float64)

        def fn(h, x):
            return (h @ w).tanh(), x * 2.0 + h[:, :3]

        h = Tensor(rng.normal(size=(5, 4)), requires_grad=True, dtype=np.float64)
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True, dtype=np.float64)
        h1, x1 = checkpoint_multi(fn, h, x)
        ((h1 * h1).sum() + x1.sum()).backward()
        grads = (h.grad.copy(), x.grad.copy(), w.grad.copy())

        h.zero_grad(), x.zero_grad(), w.zero_grad()
        h2, x2 = fn(h, x)
        ((h2 * h2).sum() + x2.sum()).backward()
        for a, b in zip(grads, (h.grad, x.grad, w.grad)):
            assert np.allclose(a, b, atol=1e-12)

    def test_single_output_function(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True, dtype=np.float64)
        (out,) = checkpoint_multi(lambda t: t * 3.0, x)
        out.sum().backward()
        assert np.allclose(x.grad, 3.0)


class TestCheckpointMemory:
    def test_checkpoint_reduces_stored_activations(self):
        """The whole point: fewer live bytes at the end of forward."""
        rng = np.random.default_rng(4)
        weights = [
            Tensor(rng.normal(size=(64, 64)).astype(np.float32), requires_grad=True)
            for _ in range(6)
        ]

        def deep(x: Tensor) -> Tensor:
            for w in weights:
                x = (x @ w).tanh()
            return x

        def measure(use_checkpoint: bool) -> int:
            tracker = MemoryTracker("m")
            with use_tracker(tracker):
                x = Tensor(rng.normal(size=(512, 64)).astype(np.float32), requires_grad=True)
                if use_checkpoint:
                    out = checkpoint(deep, x)
                else:
                    out = deep(x)
                live = tracker.snapshot().total
                out.sum().backward()
            return live

        stored_plain = measure(False)
        stored_ckpt = measure(True)
        assert stored_ckpt < stored_plain * 0.5
