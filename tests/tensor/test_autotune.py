"""The shape-bucketed autotuner and its ``auto`` dispatch backend."""

import numpy as np
import pytest

from repro.graph.batch import collate
from repro.models import HydraModel, ModelConfig
from repro.tensor import kernels, parallel
from repro.tensor.autotune import (
    Autotuner,
    bucket,
    default_autotuner,
)
from tests.helpers import make_molecule_graphs


@pytest.fixture(autouse=True)
def _clean_tuner():
    """Each test starts from an empty default tuner and default config."""
    tuner = default_autotuner()
    saved_min_work = tuner.min_work
    tuner.clear()
    parallel.configure(max_workers=4, min_rows=8)
    yield tuner
    tuner.clear()
    tuner.min_work = saved_min_work
    parallel.configure()


class TestBucketing:
    def test_bucket_rounds_up_to_power_of_two(self):
        assert bucket(0) == 0
        assert bucket(1) == 1
        assert bucket(2) == 2
        assert bucket(3) == 4
        assert bucket(1000) == 1024
        assert bucket(1024) == 1024
        assert bucket(1025) == 2048

    def test_same_bucket_shares_decision(self, _clean_tuner):
        tuner = _clean_tuner
        tuner.min_work = 1  # the guard under test is bucketing, not size
        tuner.record("linear", 1000, 100, numpy_s=2.0, parallel_s=1.0)
        assert tuner.lookup("linear", 600, 80) == "parallel"  # same 1024/128 bucket
        assert tuner.lookup("linear", 3000, 80) is None  # different rows bucket


class TestDecisions:
    def test_small_shapes_always_numpy_without_measuring(self, _clean_tuner):
        tuner = _clean_tuner
        assert tuner.lookup("linear", 10, 10) == "numpy"
        assert len(tuner) == 0  # no bucket entry was created

    def test_single_worker_hosts_always_numpy(self, _clean_tuner):
        parallel.configure(max_workers=1)
        assert _clean_tuner.lookup("linear", 10**6, 512) == "numpy"

    def test_record_picks_faster_backend(self, _clean_tuner):
        tuner = _clean_tuner
        d1 = tuner.record("silu", 10**6, 64, numpy_s=1.0, parallel_s=0.4)
        d2 = tuner.record("linear", 10**6, 64, numpy_s=0.3, parallel_s=0.9)
        assert d1.backend == "parallel"
        assert d2.backend == "numpy"

    def test_auto_backend_measures_once_then_dispatches(self, _clean_tuner):
        tuner = _clean_tuner
        tuner.min_work = 64  # let the small test shape qualify
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2000, 32)).astype(np.float32)
        w = rng.standard_normal((32, 16)).astype(np.float32)
        impl = kernels.get_kernel("linear", "auto")
        first = impl.forward(x, w, None)
        assert len(tuner) == 1
        second = impl.forward(x, w, None)
        assert len(tuner) == 1  # no re-measurement
        np.testing.assert_allclose(first, second, atol=1e-6)
        ((kernel, rows, cols, dtype),) = tuner.decisions().keys()
        assert (kernel, rows, cols, dtype) == ("linear", 2048, 16, "float32")

    def test_dtype_is_part_of_the_key(self, _clean_tuner):
        """A float32 decision must not be recycled for float64 traffic."""
        tuner = _clean_tuner
        tuner.min_work = 1
        tuner.record("linear", 1000, 100, numpy_s=2.0, parallel_s=1.0, dtype="float32")
        assert tuner.lookup("linear", 1000, 100, dtype="float32") == "parallel"
        assert tuner.lookup("linear", 1000, 100, dtype="float64") is None
        tuner.record("linear", 1000, 100, numpy_s=0.5, parallel_s=1.0, dtype="float64")
        assert tuner.lookup("linear", 1000, 100, dtype="float64") == "numpy"
        assert tuner.lookup("linear", 1000, 100, dtype="float32") == "parallel"
        assert len(tuner) == 2

    def test_auto_backend_measures_per_dtype(self, _clean_tuner):
        tuner = _clean_tuner
        tuner.min_work = 64
        rng = np.random.default_rng(3)
        impl = kernels.get_kernel("linear", "auto")
        for dtype in (np.float32, np.float64):
            x = rng.standard_normal((2000, 32)).astype(dtype)
            w = rng.standard_normal((32, 16)).astype(dtype)
            impl.forward(x, w, None)
        dtypes = {key[3] for key in tuner.decisions()}
        assert dtypes == {"float32", "float64"}

    def test_backward_without_decision_falls_back_to_numpy(self, _clean_tuner):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((100, 8)).astype(np.float32)
        w = rng.standard_normal((8, 4)).astype(np.float32)
        grad = rng.standard_normal((100, 4)).astype(np.float32)
        impl = kernels.get_kernel("linear", "auto")
        got = impl.backward(grad, x, w, None, (True, True, False))
        expected = kernels.get_kernel("linear", "numpy").backward(
            grad, x, w, None, (True, True, False)
        )
        np.testing.assert_allclose(got[0], expected[0], atol=1e-6)
        np.testing.assert_allclose(got[1], expected[1], atol=1e-6)


class TestPersistence:
    def test_json_round_trip(self, _clean_tuner, tmp_path):
        tuner = _clean_tuner
        tuner.record("linear", 5000, 128, numpy_s=1.5, parallel_s=0.5)
        tuner.record("silu", 9000, 64, numpy_s=0.2, parallel_s=0.8)
        path = tuner.save(tmp_path / "autotune.json")
        fresh = Autotuner()
        assert fresh.load(path) == 2
        assert fresh.lookup("linear", 5000, 128) == "parallel"
        assert fresh.lookup("silu", 9000, 64) == "numpy"

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not an autotune cache"):
            Autotuner().load(path)

    def test_load_ignores_old_format_versions(self, tmp_path):
        """A v1 warm-start file degrades to a cold start, not a crash.

        v1 keys had no dtype component, so its decisions are ambiguous
        under the v2 key and must be dropped wholesale.
        """
        path = tmp_path / "old.json"
        path.write_text(
            '{"format": "repro-autotune-v1", "min_work": 65536, "decisions": '
            '{"linear|4096|128": {"backend": "parallel", "numpy_s": 1.0, '
            '"parallel_s": 0.2}}}'
        )
        fresh = Autotuner()
        assert fresh.load(path) == 0
        assert len(fresh) == 0

    def test_save_merges_sibling_decisions(self, tmp_path):
        """Two replicas saving to one shared file union their decisions."""
        path = tmp_path / "shared.json"
        first = Autotuner()
        first.record("linear", 5000, 128, numpy_s=1.5, parallel_s=0.5)
        first.save(path)
        second = Autotuner()
        second.record("silu", 9000, 64, numpy_s=0.2, parallel_s=0.8)
        second.save(path)  # must keep the sibling's linear decision
        fresh = Autotuner()
        assert fresh.load(path) == 2
        assert fresh.lookup("linear", 5000, 128) == "parallel"
        assert fresh.lookup("silu", 9000, 64) == "numpy"

    def test_save_own_measurement_wins_collisions(self, tmp_path):
        """On a shared key, the saving process's fresher decision lands."""
        path = tmp_path / "shared.json"
        stale = Autotuner()
        stale.record("linear", 5000, 128, numpy_s=0.1, parallel_s=1.0)
        stale.save(path)
        fresher = Autotuner()
        fresher.record("linear", 5000, 128, numpy_s=1.0, parallel_s=0.1)
        fresher.save(path)
        fresh = Autotuner()
        assert fresh.load(path) == 1
        assert fresh.lookup("linear", 5000, 128) == "parallel"

    def test_save_replaces_corrupt_file_atomically(self, tmp_path):
        """A truncated cache (killed replica mid-write of an old, pre-atomic
        version) is replaced rather than crashing the save, and no temp
        files are left behind."""
        path = tmp_path / "shared.json"
        path.write_text('{"format": "repro-autotune')  # torn write
        tuner = Autotuner()
        tuner.record("silu", 9000, 64, numpy_s=0.9, parallel_s=0.2)
        tuner.save(path)
        fresh = Autotuner()
        assert fresh.load(path) == 1
        assert [p.name for p in tmp_path.iterdir()] == ["shared.json"]

    def test_service_tolerates_old_format_cache(self, tmp_path):
        """ServiceConfig(autotune_cache=<v1 file>) must construct cleanly."""
        from repro.serving import PredictionService, ServiceConfig

        path = tmp_path / "old.json"
        path.write_text('{"format": "repro-autotune-v1", "decisions": {}}')
        model = HydraModel(ModelConfig(hidden_dim=8, num_layers=1), seed=0)
        PredictionService(model, ServiceConfig(autotune_cache=str(path)))

    def test_service_warm_start_and_save(self, tmp_path):
        from repro.serving import PredictionService, ServiceConfig

        cache_path = tmp_path / "tuner.json"
        seed_tuner = Autotuner()
        seed_tuner.record("linear", 4096, 128, numpy_s=1.0, parallel_s=0.25)
        seed_tuner.save(cache_path)

        model = HydraModel(ModelConfig(hidden_dim=8, num_layers=1), seed=0)
        service = PredictionService(
            model, ServiceConfig(autotune_cache=str(cache_path))
        )
        # Warm start: the decision is visible before any traffic.
        assert default_autotuner().lookup("linear", 4096, 128) == "parallel"
        with service.start(workers=1):
            service.predict(make_molecule_graphs(1, seed=0)[0])
        assert cache_path.exists()  # re-saved on stop


class TestEndToEnd:
    def test_auto_backend_model_predict_matches_numpy(self, _clean_tuner):
        batch = collate(make_molecule_graphs(4, seed=8))
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
        reference = model.predict(batch)
        with kernels.use_backend("auto"):
            predicted = model.predict(batch)
        for key in ("energy", "forces"):
            np.testing.assert_allclose(
                predicted[key].numpy(), reference[key].numpy(), atol=1e-5
            )
        # Test-sized inputs are all below min_work: nothing was measured,
        # which is exactly the "small shapes stay numpy" guarantee.
        assert len(_clean_tuner) == 0
