"""Engine thread-safety: grad mode, pool/tracker stacks, shared pools.

These are the invariants that let serving workers run model forwards
concurrently without a global model lock: every piece of engine context
(``no_grad``, ``use_pool``, ``use_tracker``, ``use_backend``) is
thread-local, and the shared structures (one ``BufferPool``, the node
counter) are safe under concurrent access.
"""

import threading

import numpy as np

from repro.graph.batch import collate
from repro.models import HydraModel, ModelConfig
from repro.tensor import kernels
from repro.tensor.allocator import (
    BufferPool,
    MemoryTracker,
    active_pool,
    active_tracker,
    global_tracker,
    use_pool,
    use_tracker,
)
from repro.tensor.core import (
    Tensor,
    function_nodes_created,
    grad_enabled,
    no_grad,
)
from tests.helpers import make_molecule_graphs


def _run_in_thread(fn, *args):
    """Run ``fn`` on a fresh thread; re-raise anything it raised."""
    box: dict = {}

    def target():
        try:
            box["result"] = fn(*args)
        except BaseException as exc:  # noqa: BLE001
            box["error"] = exc

    thread = threading.Thread(target=target)
    thread.start()
    thread.join(30.0)
    assert not thread.is_alive(), "worker thread hung"
    if "error" in box:
        raise box["error"]
    return box["result"]


class TestGradModeIsolation:
    def test_no_grad_does_not_leak_across_threads(self):
        entered = threading.Event()
        release = threading.Event()
        observed: dict[str, bool] = {}

        def holder():
            with no_grad():
                entered.set()
                assert release.wait(10.0)
            return grad_enabled()

        def observer():
            assert entered.wait(10.0)
            observed["other_thread"] = grad_enabled()
            release.set()

        holder_thread = threading.Thread(target=lambda: observed.update(h=holder()))
        watcher_thread = threading.Thread(target=observer)
        holder_thread.start()
        watcher_thread.start()
        holder_thread.join(10.0)
        watcher_thread.join(10.0)
        # While one thread sat inside no_grad, the other stayed in grad mode.
        assert observed["other_thread"] is True
        assert observed["h"] is True  # restored after the block
        assert grad_enabled() is True  # main thread untouched throughout

    def test_fresh_threads_start_with_grad_enabled(self):
        with no_grad():
            # Even spawned *during* a main-thread no_grad block.
            assert _run_in_thread(grad_enabled) is True

    def test_node_counter_sums_across_threads(self):
        before = function_nodes_created()

        def build_graph():
            x = Tensor(np.ones((4, 4), dtype=np.float32), requires_grad=True)
            (x * 2.0).sum().backward()

        threads = [threading.Thread(target=build_graph) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        # 4 threads x (Mul, Sum) >= 8 nodes, all visible from the main thread.
        assert function_nodes_created() >= before + 8


class TestContextStackIsolation:
    def test_use_pool_is_thread_local(self):
        pool = BufferPool()
        inside = threading.Event()
        release = threading.Event()
        seen: dict[str, object] = {}

        def holder():
            with use_pool(pool):
                inside.set()
                assert release.wait(10.0)

        def observer():
            assert inside.wait(10.0)
            seen["pool"] = active_pool()
            release.set()

        a = threading.Thread(target=holder)
        b = threading.Thread(target=observer)
        a.start()
        b.start()
        a.join(10.0)
        b.join(10.0)
        assert seen["pool"] is None  # the holder's pool never leaked over
        assert active_pool() is None

    def test_use_tracker_is_thread_local(self):
        tracker = MemoryTracker("rank0")
        inside = threading.Event()
        release = threading.Event()
        seen: dict[str, object] = {}

        def holder():
            with use_tracker(tracker):
                inside.set()
                assert release.wait(10.0)
                return active_tracker()

        def observer():
            assert inside.wait(10.0)
            seen["tracker"] = active_tracker()
            release.set()

        a = threading.Thread(target=lambda: seen.update(holder=holder()))
        b = threading.Thread(target=observer)
        a.start()
        b.start()
        a.join(10.0)
        b.join(10.0)
        assert seen["holder"] is tracker
        assert seen["tracker"] is global_tracker()

    def test_use_backend_is_thread_local(self):
        inside = threading.Event()
        release = threading.Event()
        seen: dict[str, str] = {}

        def holder():
            with kernels.use_backend("parallel"):
                inside.set()
                assert release.wait(10.0)

        def observer():
            assert inside.wait(10.0)
            seen["backend"] = kernels.active_backend()
            release.set()

        a = threading.Thread(target=holder)
        b = threading.Thread(target=observer)
        a.start()
        b.start()
        a.join(10.0)
        b.join(10.0)
        assert seen["backend"] == "numpy"

    def test_set_default_backend_reaches_new_threads(self):
        previous = kernels.set_default_backend("parallel")
        try:
            assert _run_in_thread(kernels.active_backend) == "parallel"
        finally:
            kernels.set_default_backend(previous)

    def test_tracker_category_stack_is_thread_local(self):
        tracker = MemoryTracker("shared")
        inside = threading.Event()
        release = threading.Event()
        seen: dict[str, str] = {}

        def holder():
            with tracker.category("weights"):
                inside.set()
                assert release.wait(10.0)

        def observer():
            assert inside.wait(10.0)
            seen["category"] = tracker.active_category
            release.set()

        a = threading.Thread(target=holder)
        b = threading.Thread(target=observer)
        a.start()
        b.start()
        a.join(10.0)
        b.join(10.0)
        assert seen["category"] == "activations"


class TestSharedPoolConcurrency:
    def test_shared_pool_never_hands_one_buffer_to_two_threads(self):
        pool = BufferPool()
        corruption: list[str] = []
        barrier = threading.Barrier(4)

        def worker(tag: float):
            barrier.wait(10.0)
            for _ in range(200):
                buf = pool.acquire((64,), np.float64)
                buf.fill(tag)
                if not (buf == tag).all():
                    corruption.append(f"worker {tag} saw foreign writes")
                del buf

        threads = [threading.Thread(target=worker, args=(float(i),)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert corruption == []
        assert pool.stats.hits + pool.stats.misses == 4 * 200

    def test_concurrent_model_forwards_match_sequential(self):
        """Four threads forwarding through one model under one shared pool."""
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
        batches = [collate(make_molecule_graphs(2, seed=s)) for s in range(4)]
        expected = [model.predict(b)["energy"].numpy().copy() for b in batches]
        pool = BufferPool()
        results: list = [None] * 4
        barrier = threading.Barrier(4)

        def worker(index: int):
            barrier.wait(10.0)
            for _ in range(5):
                with use_pool(pool):
                    out = model.serve(batches[index])
                results[index] = out["energy"]

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)


class TestPlannedConcurrentServing:
    """Execution-plan replay under ``start(workers=4)`` concurrent serving.

    Plans are cached per model and replayed by whichever worker thread
    picks up a batch, with arenas leased per concurrent replay — the
    results must be bit-identical to the inline *unplanned* path, and
    replays (not just compiles) must actually happen under load.
    """

    def test_workers4_planned_serving_matches_unplanned_inline(self):
        from repro.serving import PredictionService, ServiceConfig

        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
        graphs = make_molecule_graphs(6, seed=3)
        # Ground truth: each structure served alone, unplanned, inline.
        expected = {}
        for graph in graphs:
            outputs = model.serve(collate([graph]), plan=False)
            expected[id(graph)] = (
                float(outputs["energy"][0, 0]),
                np.array(outputs["forces"]),
            )

        service = PredictionService(
            model,
            # max_graphs=1 so every request is its own single-graph batch
            # (comparable bit-for-bit with the inline ground truth);
            # caching off so every request exercises a planned forward.
            ServiceConfig(max_graphs=1, cache_capacity=0, flush_interval_s=0.001),
        )
        service.start(workers=4)
        try:
            stream = graphs * 4  # repeats: same buckets hit from many threads
            results = service.predict_many(stream)
        finally:
            service.stop()
        for graph, result in zip(stream, results):
            want_energy, want_forces = expected[id(graph)]
            assert result.energy == want_energy
            np.testing.assert_array_equal(result.forces, want_forces)
        # Concurrency genuinely exercised the plan cache: compiles for
        # the buckets, replays for the repeats (racing workers may each
        # compile a bucket once, so the exact split is load-dependent).
        stats = model.plans.stats
        assert stats.compiled >= 1
        assert stats.hits >= 1
        assert stats.hits + stats.misses == len(stream)

    def test_plan_compile_race_is_benign(self):
        """Many threads compiling the same bucket: one plan, equal bits."""
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
        batch = collate(make_molecule_graphs(2, seed=0))
        expected = model.serve(batch, plan=False)
        barrier = threading.Barrier(4)
        outputs: list = [None] * 4

        def worker(index: int):
            barrier.wait(10.0)
            outputs[index] = model.serve(batch, plan=True)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        for out in outputs:
            np.testing.assert_array_equal(out["energy"], expected["energy"])
            np.testing.assert_array_equal(out["forces"], expected["forces"])
        assert len(model.plans) == 1  # racing compiles collapsed to one plan
