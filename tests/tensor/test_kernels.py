"""Kernel-dispatch registry, buffer pool, and the inference fast path."""

import numpy as np
import pytest

from repro.graph.batch import collate
from repro.models import HydraModel, ModelConfig
from repro.tensor import kernels
from repro.tensor.allocator import BufferPool, active_pool, pool_empty, pool_zeros, use_pool
from repro.tensor.core import Tensor, function_nodes_created, no_grad
from tests.helpers import make_molecule_graphs


class TestRegistry:
    def test_core_kernels_registered(self):
        names = kernels.available_kernels("numpy")
        for expected in (
            "linear",
            "silu",
            "edge_message_linear",
            "concat_linear",
            "segment_sum",
            "mul_segment_sum",
            "gather_diff",
        ):
            assert expected in names

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            kernels.get_kernel("definitely_not_a_kernel")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            kernels.register_kernel("linear")(object())

    def test_unknown_backend_falls_back_to_numpy(self):
        with kernels.use_backend("future-accelerator"):
            assert kernels.active_backend() == "future-accelerator"
            impl = kernels.get_kernel("linear")
        assert impl is kernels.get_kernel("linear", backend="numpy")

    def test_backend_override_dispatches(self):
        calls = []

        @kernels.register_kernel("linear", backend="test-backend")
        class _Probe:
            @staticmethod
            def forward(x, weight, bias=None):
                calls.append("hit")
                return kernels.get_kernel("linear", backend="numpy").forward(x, weight, bias)

        try:
            x = Tensor(np.ones((2, 3)))
            w = Tensor(np.ones((3, 2)))
            with kernels.use_backend("test-backend"):
                kernels.linear(x, w)
            assert calls == ["hit"]
        finally:
            kernels._REGISTRY.pop(("linear", "test-backend"))

    def test_fusion_switch_restores(self):
        assert kernels.fusion_enabled()
        with kernels.fusion(False):
            assert not kernels.fusion_enabled()
            with kernels.fusion(True):
                assert kernels.fusion_enabled()
            assert not kernels.fusion_enabled()
        assert kernels.fusion_enabled()


class TestBufferPool:
    def test_reuses_dead_buffers(self):
        pool = BufferPool()
        first = pool.acquire((8, 4), np.float32)
        first_id = id(first)
        del first
        second = pool.acquire((8, 4), np.float32)
        assert id(second) == first_id
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_never_reuses_live_buffers(self):
        pool = BufferPool()
        live = pool.acquire((4,), np.float32)
        other = pool.acquire((4,), np.float32)
        assert other is not live
        assert pool.stats.misses == 2

    def test_views_keep_base_buffers_busy(self):
        pool = BufferPool()
        base = pool.acquire((6, 2), np.float32)
        view = base[1:3]
        del base
        # The view still references the storage, so it must not be reused.
        replacement = pool.acquire((6, 2), np.float32)
        assert replacement.base is None
        assert not np.shares_memory(replacement, view)

    def test_bucket_cap_bounds_retention(self):
        pool = BufferPool(max_per_bucket=2)
        kept = [pool.acquire((3,), np.float32) for _ in range(5)]
        assert pool.reserved_bytes() == 2 * 3 * 4
        del kept

    def test_byte_budget_evicts_stale_idle_shapes(self):
        # 100-float budget: two dead 40-float shapes, then a 60-float
        # acquire must evict idle buffers rather than blow the budget.
        pool = BufferPool(max_total_bytes=400)
        stale = pool.acquire((40,), np.float32)
        del stale
        stale2 = pool.acquire((35,), np.float32)
        del stale2
        big = pool.acquire((60,), np.float32)
        assert pool.reserved_bytes() <= 400
        assert pool.stats.evictions >= 1
        del big

    def test_byte_budget_never_blocks_allocation(self):
        # Busy buffers cannot be evicted; acquire still hands out arrays,
        # it just stops retaining them.
        pool = BufferPool(max_total_bytes=100)
        live = [pool.acquire((20,), np.float32) for _ in range(5)]
        assert len({id(a) for a in live}) == 5
        assert pool.reserved_bytes() <= 100

    def test_pool_helpers_respect_active_pool(self):
        assert active_pool() is None
        plain = pool_zeros((2, 2), np.float32)
        assert (plain == 0).all()
        with use_pool() as pool:
            assert active_pool() is pool
            scratch = pool_empty((5, 5), np.float32)
            scratch.fill(7.0)
            zeroed = pool_zeros((5, 5), np.float32)
            assert (zeroed == 0).all()
        assert active_pool() is None

    def test_training_steps_recycle_buffers(self):
        batch = collate(make_molecule_graphs(3, seed=11))
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
        target_e = np.zeros((batch.num_graphs, 1), dtype=np.float32)
        target_f = np.zeros((batch.num_nodes, 3), dtype=np.float32)

        def step():
            model.zero_grad()
            loss = model.loss(model(batch), target_e, target_f)
            loss.backward()
            return loss.item()

        pool = BufferPool()
        with use_pool(pool):
            first = step()
            after_first = pool.stats.misses
            second = step()
        assert np.isfinite(first) and np.isfinite(second)
        # Steady state: the second step reuses the first step's buffers.
        assert pool.stats.hits > 0
        assert pool.stats.misses <= after_first + 2

    def test_pooled_training_matches_unpooled(self):
        batch = collate(make_molecule_graphs(3, seed=12))
        target_e = np.zeros((batch.num_graphs, 1), dtype=np.float32)
        target_f = np.zeros((batch.num_nodes, 3), dtype=np.float32)

        def losses(pooled: bool) -> list[float]:
            from contextlib import nullcontext

            model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=3)
            from repro.optim import Adam

            optimizer = Adam(model.parameters(), lr=1e-3)
            out = []
            with use_pool() if pooled else nullcontext():
                for _ in range(3):
                    model.zero_grad()
                    loss = model.loss(model(batch), target_e, target_f)
                    loss.backward()
                    optimizer.step()
                    out.append(loss.item())
            return out

        assert losses(True) == pytest.approx(losses(False), rel=1e-6)


class TestInferenceFastPath:
    def test_no_function_nodes_under_no_grad(self):
        batch = collate(make_molecule_graphs(3, seed=13))
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
        model.predict(batch)  # warm any lazy setup
        before = function_nodes_created()
        with no_grad():
            predictions = model(batch)
        assert function_nodes_created() == before
        assert predictions["energy"].requires_grad is False
        assert predictions["energy"]._ctx is None

    def test_predict_uses_fast_path(self):
        batch = collate(make_molecule_graphs(2, seed=14))
        model = HydraModel(ModelConfig(hidden_dim=8, num_layers=1), seed=0)
        before = function_nodes_created()
        model.predict(batch)
        assert function_nodes_created() == before

    def test_grad_mode_still_builds_nodes(self):
        batch = collate(make_molecule_graphs(2, seed=15))
        model = HydraModel(ModelConfig(hidden_dim=8, num_layers=1), seed=0)
        before = function_nodes_created()
        model(batch)
        assert function_nodes_created() > before

    def test_fast_path_matches_grad_path(self):
        batch = collate(make_molecule_graphs(3, seed=16))
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
        trained = model(batch)
        inferred = model.predict(batch)
        for key in ("energy", "forces"):
            np.testing.assert_allclose(
                trained[key].numpy(), inferred[key].numpy(), atol=1e-6
            )
