"""Power-law / Chinchilla fitting: parameter recovery on synthetic data."""

import numpy as np
import pytest

from repro.scaling import (
    bootstrap_exponent,
    fit_chinchilla,
    fit_power_law,
)


class TestPowerLaw:
    def test_recovers_known_exponent(self):
        x = np.logspace(3, 8, 12)
        y = 5.0 * x**-0.35 + 0.1
        fit = fit_power_law(x, y)
        assert fit.alpha == pytest.approx(0.35, abs=0.02)
        assert fit.c == pytest.approx(0.1, abs=0.02)
        assert fit.r_squared > 0.999

    def test_robust_to_noise(self):
        rng = np.random.default_rng(0)
        x = np.logspace(3, 8, 30)
        y = 5.0 * x**-0.35 + 0.1 + rng.normal(0, 0.002, size=30)
        fit = fit_power_law(x, y)
        assert fit.alpha == pytest.approx(0.35, abs=0.1)

    def test_predict_interpolates(self):
        x = np.logspace(2, 6, 10)
        y = 2.0 * x**-0.5 + 0.05
        fit = fit_power_law(x, y)
        assert fit.predict(1e4) == pytest.approx(2.0 * 1e4**-0.5 + 0.05, rel=0.05)

    def test_floorless_variant(self):
        x = np.logspace(2, 6, 10)
        y = 2.0 * x**-0.5
        fit = fit_power_law(x, y, floor=False)
        assert fit.c == 0.0
        assert fit.alpha == pytest.approx(0.5, abs=0.02)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_law([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            fit_power_law(np.ones((2, 2)), np.ones((2, 2)))

    def test_str_mentions_parameters(self):
        x = np.logspace(2, 6, 10)
        fit = fit_power_law(x, 2.0 * x**-0.5 + 0.05)
        assert "R^2" in str(fit)

    def test_bootstrap_interval_contains_truth(self):
        x = np.logspace(3, 7, 20)
        y = 3.0 * x**-0.3 + 0.05
        low, high = bootstrap_exponent(x, y, num_resamples=50, seed=1)
        assert low <= 0.3 + 0.05 and high >= 0.3 - 0.05


class TestChinchilla:
    def test_recovers_known_surface(self):
        rng = np.random.default_rng(2)
        points = []
        for _ in range(40):
            n = float(10 ** rng.uniform(4, 9))
            d = float(10 ** rng.uniform(6, 10))
            loss = 0.08 + 12.0 * n**-0.32 + 40.0 * d**-0.28
            points.append((n, d, loss))
        fit = fit_chinchilla(points)
        assert fit.alpha == pytest.approx(0.32, abs=0.06)
        assert fit.beta == pytest.approx(0.28, abs=0.06)
        assert fit.r_squared > 0.99

    def test_predict_matches_training_points(self):
        points = [
            (1e5, 1e7, 0.5),
            (1e6, 1e7, 0.4),
            (1e7, 1e7, 0.35),
            (1e5, 1e8, 0.45),
            (1e6, 1e8, 0.35),
            (1e7, 1e8, 0.3),
            (1e5, 1e9, 0.42),
            (1e7, 1e9, 0.27),
        ]
        fit = fit_chinchilla(points)
        predictions = fit.predict([p[0] for p in points], [p[1] for p in points])
        assert np.abs(predictions - [p[2] for p in points]).max() < 0.05

    def test_optimal_model_size_grows_with_data(self):
        points = []
        rng = np.random.default_rng(3)
        for _ in range(30):
            n = float(10 ** rng.uniform(4, 9))
            d = float(10 ** rng.uniform(6, 10))
            points.append((n, d, 0.1 + 5.0 * n**-0.3 + 20.0 * d**-0.3))
        fit = fit_chinchilla(points)
        assert fit.optimal_model_size(1e10) > fit.optimal_model_size(1e8)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_chinchilla([(1e5, 1e7, 0.5)] * 4)

    def test_nonpositive_rejected(self):
        points = [(1e5, 1e7, 0.5)] * 5
        points[0] = (-1.0, 1e7, 0.5)
        with pytest.raises(ValueError):
            fit_chinchilla(points)
