"""Paper-scale surface: anchor solving and the paper's qualitative claims."""

import numpy as np
import pytest

from repro.experiments.paperdata import (
    FIG5_OVERSMOOTHING_PER_LAYER,
    FIG34_ANCHORS,
    PAPER_DATASET_GRID_TB,
    PAPER_MODEL_GRID,
)
from repro.scaling import GNNLossSurface, anchor_fit_error, solve_surface_from_anchors


@pytest.fixture(scope="module")
def surface() -> GNNLossSurface:
    return solve_surface_from_anchors(
        FIG34_ANCHORS,
        alpha=0.35,
        beta=0.17,
        oversmoothing_per_layer=FIG5_OVERSMOOTHING_PER_LAYER,
    )


class TestAnchorSolving:
    def test_anchor_rms_small(self, surface):
        """Within ~0.01 loss of every digitized paper point."""
        assert anchor_fit_error(surface, FIG34_ANCHORS) < 0.012

    def test_coefficients_nonnegative(self, surface):
        assert surface.E >= 0
        assert surface.A >= 0
        assert surface.B >= 0
        assert surface.mismatch_scale >= 0

    def test_too_few_anchors_rejected(self):
        with pytest.raises(ValueError):
            solve_surface_from_anchors(FIG34_ANCHORS[:3], alpha=0.3, beta=0.2)

    def test_losses_in_paper_range(self, surface):
        """All grid losses fall in Fig. 3/4's axis range (0.09-0.21)."""
        for n in PAPER_MODEL_GRID:
            for d in PAPER_DATASET_GRID_TB:
                loss = float(surface.loss(n, d))
                assert 0.09 < loss < 0.21, (n, d, loss)


class TestPaperClaims:
    def test_model_scaling_monotone(self, surface):
        """Fig. 3: more parameters never hurt."""
        for d in PAPER_DATASET_GRID_TB:
            losses = [float(surface.loss(n, d)) for n in PAPER_MODEL_GRID]
            assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:])), d

    def test_data_scaling_monotone(self, surface):
        """Fig. 4: more data never hurts."""
        for n in PAPER_MODEL_GRID:
            losses = [float(surface.loss(n, d)) for d in PAPER_DATASET_GRID_TB]
            assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:])), n

    def test_diminishing_returns_in_model_size(self, surface):
        """Fig. 3: the per-decade gain shrinks at large N."""
        losses = [float(surface.loss(n, 1.2)) for n in (1e5, 1e6, 1e7, 1e8, 1e9)]
        drops = [a - b for a, b in zip(losses, losses[1:])]
        assert drops[-1] < drops[0]

    def test_mismatch_bump_shape(self, surface):
        """Fig. 4: 0.1->0.2 TB drop larger than 0.2->0.4 TB drop."""
        losses = {d: float(surface.loss(2e9, d)) for d in (0.1, 0.2, 0.4)}
        assert losses[0.1] - losses[0.2] > losses[0.2] - losses[0.4]

    def test_bump_vanishes_at_large_data(self, surface):
        assert surface.mismatch_bump(1.2) < surface.mismatch_bump(0.1) * 0.01

    def test_data_beats_model_at_scale(self, surface):
        """Sec. IV-B: at large scales, adding data helps more than adding
        parameters (the paper's bolded conclusion)."""
        # From (200M params, 0.6TB): double params vs double data.
        base = float(surface.loss(2e8, 0.6))
        more_params = float(surface.loss(4e8, 0.6))
        more_data = float(surface.loss(2e8, 1.2))
        assert (base - more_data) > (base - more_params)

    def test_depth_penalty_applies_beyond_reference(self, surface):
        at_3 = float(surface.loss(5e7, 0.4, depth=3))
        at_6 = float(surface.loss(5e7, 0.4, depth=6))
        assert at_6 == pytest.approx(at_3 + 3 * FIG5_OVERSMOOTHING_PER_LAYER)

    def test_depth_below_reference_free(self, surface):
        assert float(surface.loss(5e7, 0.4, depth=2)) == float(surface.loss(5e7, 0.4, depth=3))

    def test_corner_losses_near_paper(self, surface):
        """The four (N, D) rectangle corners within 0.02 of the paper."""
        corners = {
            (1e5, 0.1): 0.183,
            (1e5, 1.2): 0.168,
            (2e9, 0.1): 0.146,
            (2e9, 1.2): 0.103,
        }
        for (n, d), expected in corners.items():
            assert float(surface.loss(n, d)) == pytest.approx(expected, abs=0.02)
