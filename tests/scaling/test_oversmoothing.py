"""Over-smoothing diagnostics: MAD behaviour on real models."""

import numpy as np
import pytest

from repro.graph.batch import collate
from repro.models import EGNNBackbone, ModelConfig
from repro.scaling import (
    mad_profile,
    mean_average_distance,
    oversmoothing_slope,
)
from tests.helpers import make_molecule_graphs


class TestMAD:
    def test_identical_features_zero_mad(self):
        features = np.ones((5, 8))
        assert mean_average_distance(features, np.zeros(5, dtype=np.int64)) == pytest.approx(0.0)

    def test_orthogonal_features_high_mad(self):
        features = np.eye(4)
        mad = mean_average_distance(features, np.zeros(4, dtype=np.int64))
        assert mad == pytest.approx(1.0)

    def test_per_graph_separation(self):
        """Two graphs with internally identical features give MAD 0 even
        when the graphs differ from each other."""
        features = np.vstack([np.ones((3, 4)), -np.ones((3, 4))])
        node_graph = np.array([0, 0, 0, 1, 1, 1])
        assert mean_average_distance(features, node_graph) == pytest.approx(0.0)

    def test_single_node_graphs_nan(self):
        assert np.isnan(mean_average_distance(np.ones((1, 4)), np.zeros(1, dtype=np.int64)))


class TestMADProfile:
    def test_length_is_depth_plus_one(self):
        batch = collate(make_molecule_graphs(3, seed=20))
        backbone = EGNNBackbone(ModelConfig(hidden_dim=16, num_layers=4), seed=0)
        profile = mad_profile(backbone, batch)
        assert len(profile) == 5

    def test_deep_stack_smooths_features(self):
        """More message passing -> lower node-feature diversity at init.

        This is the mechanism of the Fig. 5 claim: at initialization the
        repeated neighborhood averaging of a deep EGNN contracts node
        features toward each other within a graph.
        """
        batch = collate(make_molecule_graphs(6, seed=21))
        backbone = EGNNBackbone(ModelConfig(hidden_dim=16, num_layers=6), seed=1)
        profile = mad_profile(backbone, batch)
        assert profile[-1] < profile[0]

    def test_slope_sign_matches_profile(self):
        values = [0.8, 0.6, 0.5, 0.45]
        assert oversmoothing_slope(values) < 0
        assert oversmoothing_slope([0.1, 0.2, 0.4]) > 0

    def test_slope_handles_nan(self):
        assert np.isnan(oversmoothing_slope([0.5]))
        assert oversmoothing_slope([0.5, np.nan, 0.3]) < 0
