"""Hypothesis property-based tests on core invariants.

These cover the algebraic guts of the engine and substrates with
generated inputs: broadcasting gradients, segment-sum linearity, batch
collation invariants, power-law recovery, and cost-model monotonicity.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distributed.cost_model import CommCostModel
from repro.graph.features import cosine_cutoff, gaussian_rbf
from repro.scaling.powerlaw import fit_power_law
from repro.tensor import Tensor, gather, segment_sum

_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def _array(shape):
    return arrays(np.float64, shape, elements=_floats)


class TestEngineProperties:
    @given(_array((4, 3)), _array((4, 3)))
    @settings(max_examples=25, deadline=None)
    def test_add_gradient_is_ones(self, a, b):
        ta = Tensor(a, requires_grad=True, dtype=np.float64)
        tb = Tensor(b, requires_grad=True, dtype=np.float64)
        (ta + tb).sum().backward()
        assert np.allclose(ta.grad, 1.0)
        assert np.allclose(tb.grad, 1.0)

    @given(_array((3, 4)))
    @settings(max_examples=25, deadline=None)
    def test_mul_gradient_is_partner(self, a):
        partner = np.full((3, 4), 2.5)
        t = Tensor(a, requires_grad=True, dtype=np.float64)
        (t * Tensor(partner, dtype=np.float64)).sum().backward()
        assert np.allclose(t.grad, partner)

    @given(_array((5, 2)), st.lists(st.integers(0, 2), min_size=5, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_segment_sum_preserves_total(self, data, segments):
        """Sum over segments equals sum over rows (mass conservation)."""
        out = segment_sum(Tensor(data, dtype=np.float64), np.array(segments), 3)
        assert np.allclose(out.numpy().sum(axis=0), data.sum(axis=0), atol=1e-9)

    @given(_array((6, 3)))
    @settings(max_examples=25, deadline=None)
    def test_gather_then_segment_sum_identity(self, data):
        """Scatter of a gather with identity indices reproduces the input."""
        idx = np.arange(6)
        out = segment_sum(gather(Tensor(data, dtype=np.float64), idx), idx, 6)
        assert np.allclose(out.numpy(), data, atol=1e-12)

    @given(_array((2, 5)), st.integers(0, 1))
    @settings(max_examples=25, deadline=None)
    def test_sum_axis_matches_numpy(self, data, axis):
        out = Tensor(data, dtype=np.float64).sum(axis=axis)
        assert np.allclose(out.numpy(), data.sum(axis=axis), atol=1e-12)

    @given(_array((4, 4)))
    @settings(max_examples=25, deadline=None)
    def test_double_backward_accumulates_exactly(self, data):
        t = Tensor(data, requires_grad=True, dtype=np.float64)
        (t * 3.0).sum().backward()
        first = t.grad.copy()
        (t * 3.0).sum().backward()
        assert np.allclose(t.grad, 2 * first)


class TestFeatureProperties:
    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_cutoff_envelope_bounded(self, distances):
        env = cosine_cutoff(np.array(distances), cutoff=5.0)
        assert ((env >= 0.0) & (env <= 1.0)).all()
        assert (env[np.array(distances) > 5.0] == 0.0).all()

    @given(st.lists(st.floats(0.0, 5.0), min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_rbf_rows_bounded_and_finite(self, distances):
        rbf = gaussian_rbf(np.array(distances), cutoff=5.0, num_basis=8)
        assert np.isfinite(rbf).all()
        assert ((rbf >= 0.0) & (rbf <= 1.0)).all()


class TestScalingProperties:
    @given(
        st.floats(0.05, 0.8),
        st.floats(0.01, 1.0),
        st.floats(0.5, 50.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_power_law_recovery(self, alpha, floor, scale):
        x = np.logspace(3, 8, 16)
        y = scale * x**-alpha + floor
        fit = fit_power_law(x, y)
        assert np.abs(fit.predict(x) - y).max() < 0.05 * (y.max() - y.min() + 1e-9)


class TestCostModelProperties:
    @given(st.integers(2, 64), st.floats(1e3, 1e10))
    @settings(max_examples=30, deadline=None)
    def test_allreduce_decomposition(self, ranks, nbytes):
        cost = CommCostModel(ranks)
        total = cost.all_reduce(nbytes)
        assert total > 0
        assert total == cost.reduce_scatter(nbytes) + cost.all_gather(nbytes)

    @given(st.integers(2, 64))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_bytes(self, ranks):
        cost = CommCostModel(ranks)
        times = [cost.all_reduce(n) for n in (1e3, 1e6, 1e9)]
        assert times == sorted(times)


class TestBatchProperties:
    @given(st.integers(1, 6), st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_collate_preserves_totals(self, count, seed):
        from repro.graph.batch import collate
        from tests.helpers import make_molecule_graphs

        graphs = make_molecule_graphs(count, seed=seed)
        batch = collate(graphs)
        assert batch.num_nodes == sum(g.n_atoms for g in graphs)
        assert batch.num_edges == sum(g.n_edges for g in graphs)
        assert np.allclose(
            sorted(batch.forces.sum(axis=1)),
            sorted(np.concatenate([g.forces for g in graphs]).sum(axis=1).astype(np.float32)),
            atol=1e-4,
        )

    @given(st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_node_graph_is_sorted_and_complete(self, count):
        from repro.graph.batch import collate
        from tests.helpers import make_molecule_graphs

        batch = collate(make_molecule_graphs(count, seed=1))
        assert (np.diff(batch.node_graph) >= 0).all()
        assert set(batch.node_graph) == set(range(count))
