"""End-to-end integration: the full pipeline the benches exercise.

store -> load -> normalize -> train (single and distributed) -> evaluate
-> profile -> fit scaling law, all on one small corpus.
"""

import numpy as np
import pytest

from repro.data import AdiosShardStore, Normalizer, generate_corpus
from repro.distributed import DataParallelEngine, SimCluster
from repro.memory import profile_training_step
from repro.models import HydraModel, ModelConfig
from repro.optim import Adam
from repro.scaling import fit_power_law
from repro.train import Trainer, TrainerConfig, evaluate


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    """Corpus persisted to disk and read back, as a real run would."""
    corpus = generate_corpus(80, seed=61)
    root = tmp_path_factory.mktemp("corpus")
    AdiosShardStore(root).write(corpus.graphs, shard_size=32)
    loaded = AdiosShardStore(root).read()
    normalizer = Normalizer.fit(loaded)
    train, test = loaded[:64], loaded[64:]
    return train, test, normalizer


class TestEndToEnd:
    def test_store_roundtrip_feeds_training(self, pipeline):
        train, test, normalizer = pipeline
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
        trainer = Trainer(model, normalizer, TrainerConfig(epochs=3, batch_size=16, learning_rate=2e-3))
        history = trainer.fit(train, test)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss
        assert np.isfinite(history.final_test_loss)

    def test_single_process_and_ddp_agree(self, pipeline):
        """One DDP step with 2 ranks equals the average-of-shards update."""
        train, test, normalizer = pipeline
        config = ModelConfig(hidden_dim=12, num_layers=2)
        engine = DataParallelEngine(SimCluster(2), config, normalizer, seed=3)
        before = engine.models[0].state_dict()
        engine.train_step(train[:8])
        after = engine.models[0].state_dict()
        changed = any(not np.array_equal(before[k], after[k]) for k in before)
        assert changed
        assert engine.replicas_in_sync()

    def test_profile_during_training(self, pipeline):
        train, test, normalizer = pipeline
        model = HydraModel(ModelConfig(hidden_dim=24, num_layers=2), seed=1)
        profile = profile_training_step(model, train[:8], Adam(model.parameters()), normalizer)
        breakdown = profile.paper_breakdown()
        assert breakdown["activations"] > 0
        assert profile.peak_bytes > model.num_parameters() * 4

    def test_scaling_trend_across_widths(self, pipeline):
        """Bigger models reach lower training loss on the same corpus —
        the raw material of Fig. 3 at minimum scale."""
        train, test, normalizer = pipeline
        losses = []
        widths = (4, 16)
        for width in widths:
            model = HydraModel(ModelConfig(hidden_dim=width, num_layers=2), seed=2)
            trainer = Trainer(
                model, normalizer, TrainerConfig(epochs=4, batch_size=16, learning_rate=2e-3)
            )
            history = trainer.fit(train, test)
            losses.append(min(r.test_loss for r in history.epochs))
        assert losses[-1] < losses[0]

    def test_power_law_fits_measured_curve(self, pipeline):
        """A smooth synthetic loss curve fits with high R^2 (sanity that
        the fitting utilities integrate with experiment outputs)."""
        x = np.array([1e3, 1e4, 1e5, 1e6])
        y = 2.0 * x**-0.2 + 0.3
        fit = fit_power_law(x, y)
        assert fit.r_squared > 0.999

    def test_evaluation_consistency_after_store(self, pipeline):
        train, test, normalizer = pipeline
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=4)
        metrics_a = evaluate(model, test, normalizer)
        metrics_b = evaluate(model, test, normalizer)
        assert metrics_a["test_loss"] == pytest.approx(metrics_b["test_loss"], rel=1e-7)
