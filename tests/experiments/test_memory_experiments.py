"""Fig. 6 / Table II runners on reduced workloads + step-time model."""

import pytest

from repro.distributed.step_time import StepTimeModel, egnn_forward_flops
from repro.experiments.memory_breakdown import run_fig6, suggest_batch_count
from repro.experiments.techniques import run_table2
from repro.models import ModelConfig, solve_width


@pytest.fixture(scope="module")
def fig6_result():
    return run_fig6(width=96, depth=3, ranks=2, batch_graphs=6)


@pytest.fixture(scope="module")
def table2_result():
    return run_table2(width=96, depth=3, ranks=2, steps=1, batch_per_rank=4)


class TestFig6:
    def test_activations_dominate_vanilla(self, fig6_result):
        assert fig6_result.claim_activations_dominate_vanilla()

    def test_optimized_shrinks_activation_share(self, fig6_result):
        assert fig6_result.claim_activations_minor_after()

    def test_optimized_peak_lower(self, fig6_result):
        assert fig6_result.optimized_peak_bytes < fig6_result.vanilla_peak_bytes

    def test_breakdowns_sum_to_100(self, fig6_result):
        assert sum(fig6_result.vanilla_breakdown.values()) == pytest.approx(100.0, abs=0.1)
        assert sum(fig6_result.optimized_breakdown.values()) == pytest.approx(100.0, abs=0.1)

    def test_render_includes_paper_columns(self, fig6_result):
        text = fig6_result.to_text()
        assert "76.90%" in text and "46.77%" in text

    def test_suggest_batch_count_targets_share(self):
        config = ModelConfig(hidden_dim=256, num_layers=3)
        low = suggest_batch_count(config, 15, 220, target_activation_share=0.5)
        high = suggest_batch_count(config, 15, 220, target_activation_share=0.9)
        assert high > low >= 1


class TestTable2:
    def test_memory_ordering(self, table2_result):
        assert table2_result.claim_memory_ordering()

    def test_time_ordering_modeled(self, table2_result):
        assert table2_result.claim_time_ordering()

    def test_relative_memory_baseline_100(self, table2_result):
        relative = table2_result.relative_memory()
        assert relative["vanilla"] == pytest.approx(100.0)
        assert relative["+zero_optimizer"] < relative["+activation_checkpointing"]

    def test_render(self, table2_result):
        text = table2_result.to_text()
        assert "Table II" in text
        assert "42%" in text  # paper column present


class TestStepTimeModel:
    def test_flops_scale_with_width_squared(self):
        narrow = egnn_forward_flops(ModelConfig(hidden_dim=100), 100, 2000)
        wide = egnn_forward_flops(ModelConfig(hidden_dim=200), 100, 2000)
        assert 3.0 < wide / narrow < 4.5

    def test_checkpointing_adds_one_forward(self):
        model = StepTimeModel(num_ranks=4)
        config = ModelConfig(hidden_dim=512, num_layers=3)
        plain = model.breakdown(config, 150, 3200)
        ckpt = model.breakdown(config, 150, 3200, checkpointing=True)
        assert ckpt["recompute"] == pytest.approx(plain["forward"])
        assert plain["recompute"] == 0.0

    def test_zero_adds_allgather(self):
        model = StepTimeModel(num_ranks=4)
        config = ModelConfig(hidden_dim=512, num_layers=3)
        plain = model.breakdown(config, 150, 3200, checkpointing=True)
        zero = model.breakdown(config, 150, 3200, checkpointing=True, zero=True)
        assert zero["communication"] > plain["communication"]

    def test_paper_scale_relative_times_ordered(self):
        """At 128 GPUs and 1B params the Table II ordering must hold."""
        model = StepTimeModel(num_ranks=128)
        config = solve_width(1_000_000_000, num_layers=3)
        relative = model.relative_times(config, 292, 6400)
        assert relative["vanilla"] == 100.0
        assert 100.0 < relative["+activation_checkpointing"] < 160.0
        assert relative["+activation_checkpointing"] < relative["+zero_optimizer"] < 180.0

    def test_backward_twice_forward(self):
        model = StepTimeModel(num_ranks=1)
        breakdown = model.breakdown(ModelConfig(hidden_dim=64), 50, 500)
        assert breakdown["backward"] == pytest.approx(2 * breakdown["forward"])
        assert breakdown["communication"] == 0.0
