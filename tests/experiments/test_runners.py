"""Experiment runners: registry completeness and light-budget smoke runs.

The heavyweight versions live in benchmarks/; these tests run the same
code with minimal budgets to lock in interfaces and headline claims.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.fig1_landscape import run_fig1
from repro.experiments.report import ascii_heatmap, ascii_line_chart, ascii_table, format_count
from repro.experiments.table1_sources import run_table1


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {"table1", "table2", "fig1", "fig3", "fig4", "fig5", "fig6"}
        assert expected == set(EXPERIMENTS)

    def test_specs_point_to_bench_files(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        for spec in EXPERIMENTS.values():
            assert (root / spec.bench_target).exists(), spec.bench_target

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestTable1:
    def test_rows_cover_sources(self):
        result = run_table1(samples_per_source=6)
        assert [row.name for row in result.rows] == ["ani1x", "qm7x", "oc20", "oc22", "mptrj"]

    def test_scaled_counts_within_2x_of_paper(self):
        result = run_table1(samples_per_source=8)
        assert result.max_node_ratio_error() < 1.0  # within 2x
        for row in result.rows:
            assert 0.3 < row.scaled_edges / row.paper_edges < 3.0

    def test_text_render(self):
        text = run_table1(samples_per_source=4).to_text()
        assert "Table I" in text and "oc20" in text


class TestFig1:
    def test_ours_is_the_largest_model(self):
        result = run_fig1()
        label, params, gigabytes = result.ours()
        others = [p for p in result.points if p[0] != "ours"]
        assert params > max(p[1] for p in others) * 10
        assert gigabytes > max(p[2] for p in others) * 100

    def test_render(self):
        assert "ours" in run_fig1().to_text()


class TestReportHelpers:
    def test_format_count(self):
        assert format_count(1234) == "1.23K"
        assert format_count(2.5e6) == "2.50M"
        assert format_count(2e9) == "2.00B"
        assert format_count(12) == "12"

    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_ascii_table_row_mismatch(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [["1", "2"]])

    def test_line_chart_contains_series_glyphs(self):
        chart = ascii_line_chart(
            {"a": [(1.0, 1.0), (10.0, 0.5)], "b": [(1.0, 0.8), (10.0, 0.6)]},
            log_x=True,
        )
        assert "o=a" in chart and "x=b" in chart

    def test_line_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})

    def test_heatmap_renders_values(self):
        text = ascii_heatmap(np.array([[0.1, 0.2]]), ["row"], ["c1", "c2"])
        assert "0.1000" in text


class TestScalingStudySmoke:
    @pytest.fixture(scope="class")
    def study(self):
        from repro.experiments.scaling_study import ScalingStudy
        from repro.scaling import LadderSpec

        spec = LadderSpec(
            corpus_graphs=90,
            widths=(4, 8, 16),
            dataset_fractions=(0.25, 1.0),
            epochs=2,
        )
        return ScalingStudy.run(spec)

    def test_measured_points_complete(self, study):
        assert len(study.ladder.points) == 6
        assert all(np.isfinite(p.test_loss) for p in study.ladder.points)

    def test_projected_claims_hold(self, study):
        """The paper's four headline claims on the projected tier."""
        assert study.claim_model_scaling_helps()
        assert study.claim_data_scaling_helps()
        assert study.claim_diminishing_returns()
        assert study.claim_mismatch_bump()

    def test_series_grids_cover_paper_axes(self, study):
        fig3 = study.fig3_series()
        assert len(fig3) == 7  # dataset sizes
        assert all(len(series) == 10 for series in fig3.values())  # model sizes
        fig4 = study.fig4_series()
        assert len(fig4) == 10
        assert all(len(series) == 7 for series in fig4.values())

    def test_measured_series_grouping(self, study):
        by_fraction = study.measured_fig3_series()
        assert len(by_fraction) == 2
        by_width = study.measured_fig4_series()
        assert set(by_width) == {4, 8, 16}

    def test_figure_renderers(self, study):
        from repro.experiments.data_scaling import Fig4Result
        from repro.experiments.model_scaling import Fig3Result

        assert "Fig. 3" in Fig3Result(study).to_text()
        assert "Fig. 4" in Fig4Result(study).to_text()
