"""Wire-schema contract: bit-exact round trips, strict validation, goldens."""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    ApiError,
    ErrorPayload,
    OverloadedError,
    PredictionPayload,
    PredictRequest,
    PredictResponse,
    SchemaError,
    ServerInfo,
    StatsSnapshot,
    StructurePayload,
    UnavailableError,
    UnknownModelError,
    structures_from_json,
)
from tests.helpers import make_molecule_graphs, make_periodic_graphs

GOLDEN = Path(__file__).parent / "golden"


def wire_round_trip(payload_dict: dict) -> dict:
    """dict -> JSON text -> dict, exactly what HTTP does to a body."""
    return json.loads(json.dumps(payload_dict))


def make_triclinic_payload() -> StructurePayload:
    """A fully periodic structure with a deliberately skewed cell."""
    rng = np.random.default_rng(7)
    return StructurePayload(
        atomic_numbers=np.array([22, 8, 8, 8]),
        positions=rng.uniform(0.0, 3.0, size=(4, 3)),
        cell=np.array(
            [
                [3.9051234567890123, 0.0, 0.0],
                [1.2716049382716049, 3.7103456789012345, 0.0],
                [0.8271604938271605, 1.0123456789012345, 3.6051234567890122],
            ]
        ),
        pbc=(True, True, True),
    )


class TestStructureRoundTrip:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_molecule_graph_payload_json_bit_exact(self, seed):
        graph = make_molecule_graphs(1, seed=seed)[0]
        payload = StructurePayload.from_graph(graph)
        recovered = StructurePayload.from_json_dict(wire_round_trip(payload.to_json_dict()))
        # Bit-exact: float64 survives JSON because dumps uses repr.
        assert np.array_equal(recovered.positions, graph.positions)
        assert np.array_equal(recovered.atomic_numbers, graph.atomic_numbers)
        assert recovered.cell is None
        assert recovered.pbc == (False, False, False)

    def test_periodic_graph_payload_json_bit_exact(self):
        graph = make_periodic_graphs(1, seed=1)[0]
        payload = StructurePayload.from_graph(graph)
        recovered = StructurePayload.from_json_dict(wire_round_trip(payload.to_json_dict()))
        assert np.array_equal(recovered.positions, graph.positions)
        assert np.array_equal(recovered.cell, np.asarray(graph.cell, dtype=np.float64))
        assert recovered.pbc == tuple(graph.pbc)

    def test_triclinic_cell_bit_exact_and_graph_rebuild(self):
        payload = make_triclinic_payload()
        recovered = StructurePayload.from_json_dict(wire_round_trip(payload.to_json_dict()))
        assert np.array_equal(recovered.cell, payload.cell)
        assert np.array_equal(recovered.positions, payload.positions)
        # Same bytes in -> same derived graph out, periodic images included.
        original = payload.to_graph(cutoff=4.0)
        rebuilt = recovered.to_graph(cutoff=4.0)
        assert np.array_equal(original.edge_index, rebuilt.edge_index)
        assert np.array_equal(original.edge_shift, rebuilt.edge_shift)
        assert original.n_edges > 0  # the cutoff genuinely crosses the cell

    def test_float32_coordinates_survive_exactly(self):
        """float32-origin coordinates are exactly representable in float64/JSON."""
        coords32 = np.random.default_rng(5).uniform(-3, 3, size=(6, 3)).astype(np.float32)
        payload = StructurePayload(
            atomic_numbers=np.array([6] * 6), positions=coords32.astype(np.float64)
        )
        recovered = StructurePayload.from_json_dict(wire_round_trip(payload.to_json_dict()))
        assert np.array_equal(recovered.positions.astype(np.float32), coords32)

    def test_to_graph_matches_source_pipeline_connectivity(self):
        """Rebuilding from the wire reproduces the radius-graph edges."""
        graph = make_molecule_graphs(1, seed=2)[0]
        rebuilt = StructurePayload.from_graph(graph).to_graph(cutoff=5.0)
        assert np.array_equal(rebuilt.edge_index, graph.edge_index)


class TestStructureValidation:
    def valid(self) -> dict:
        return {
            "atomic_numbers": [1, 8],
            "positions": [[0.0, 0.0, 0.0], [0.96, 0.0, 0.0]],
        }

    def test_unknown_key_rejected(self):
        obj = self.valid()
        obj["velocity"] = [[0, 0, 0]]
        with pytest.raises(SchemaError, match="unknown key"):
            StructurePayload.from_json_dict(obj)

    def test_missing_key_rejected(self):
        with pytest.raises(SchemaError, match="missing required"):
            StructurePayload.from_json_dict({"positions": [[0.0, 0.0, 0.0]]})

    def test_row_count_mismatch_rejected(self):
        obj = self.valid()
        obj["positions"] = [[0.0, 0.0, 0.0]]
        with pytest.raises(SchemaError, match="expected 2 rows"):
            StructurePayload.from_json_dict(obj)

    def test_short_row_rejected(self):
        obj = self.valid()
        obj["positions"][1] = [0.96, 0.0]
        with pytest.raises(SchemaError, match="3 components"):
            StructurePayload.from_json_dict(obj)

    def test_non_finite_coordinates_rejected(self):
        obj = self.valid()
        obj["positions"][0][0] = math.inf
        with pytest.raises(SchemaError, match="non-finite"):
            StructurePayload.from_json_dict(obj)

    def test_non_numeric_coordinate_rejected(self):
        obj = self.valid()
        obj["positions"][0][0] = "zero"
        with pytest.raises(SchemaError, match="non-numeric"):
            StructurePayload.from_json_dict(obj)

    def test_bool_is_not_an_atomic_number(self):
        obj = self.valid()
        obj["atomic_numbers"] = [True, 8]
        with pytest.raises(SchemaError, match="atomic_numbers"):
            StructurePayload.from_json_dict(obj)

    def test_element_number_range_enforced(self):
        obj = self.valid()
        obj["atomic_numbers"] = [1, 200]
        with pytest.raises(SchemaError, match=r"\[1, 118\]"):
            StructurePayload.from_json_dict(obj)

    def test_pbc_without_cell_rejected(self):
        obj = self.valid()
        obj["pbc"] = [True, True, True]
        with pytest.raises(SchemaError, match="no cell"):
            StructurePayload.from_json_dict(obj)

    def test_bad_cell_shape_rejected(self):
        obj = self.valid()
        obj["cell"] = [[1.0, 0.0], [0.0, 1.0]]
        with pytest.raises(SchemaError, match="cell"):
            StructurePayload.from_json_dict(obj)


class TestPredictRequest:
    def test_round_trip_with_model(self):
        graphs = make_molecule_graphs(2, seed=0)
        request = PredictRequest.from_graphs(graphs, model="prod")
        recovered = PredictRequest.from_json_dict(wire_round_trip(request.to_json_dict()))
        assert recovered.model == "prod"
        assert len(recovered.structures) == 2
        for graph, structure in zip(graphs, recovered.structures):
            assert np.array_equal(structure.positions, graph.positions)

    def test_version_is_mandatory_and_checked(self):
        request = PredictRequest.from_graphs(make_molecule_graphs(1, seed=0))
        obj = request.to_json_dict()
        obj["schema_version"] = "v0"
        with pytest.raises(SchemaError, match="unsupported schema_version"):
            PredictRequest.from_json_dict(obj)
        del obj["schema_version"]
        with pytest.raises(SchemaError, match="missing required"):
            PredictRequest.from_json_dict(obj)

    def test_empty_structures_rejected(self):
        with pytest.raises(SchemaError, match="non-empty"):
            PredictRequest.from_json_dict({"schema_version": "v1", "structures": []})

    def test_oversized_request_rejected(self):
        structure = {"atomic_numbers": [1], "positions": [[0.0, 0.0, 0.0]]}
        obj = {"schema_version": "v1", "structures": [structure] * 2000}
        with pytest.raises(SchemaError, match="at most"):
            PredictRequest.from_json_dict(obj)

    def test_non_string_model_rejected(self):
        structure = {"atomic_numbers": [1], "positions": [[0.0, 0.0, 0.0]]}
        obj = {"schema_version": "v1", "structures": [structure], "model": 7}
        with pytest.raises(SchemaError, match="model"):
            PredictRequest.from_json_dict(obj)

    def test_identity_fields_round_trip(self):
        request = PredictRequest.from_graphs(make_molecule_graphs(1, seed=0))
        request.client_id = "tenant-42"
        request.priority = "bulk"
        recovered = PredictRequest.from_json_dict(wire_round_trip(request.to_json_dict()))
        assert recovered.client_id == "tenant-42"
        assert recovered.priority == "bulk"

    def test_identity_fields_absent_when_unset(self):
        """Additive contract: an anonymous request emits exactly the old keys."""
        obj = PredictRequest.from_graphs(make_molecule_graphs(1, seed=0)).to_json_dict()
        assert "client_id" not in obj
        assert "priority" not in obj

    def test_bad_priority_rejected(self):
        structure = {"atomic_numbers": [1], "positions": [[0.0, 0.0, 0.0]]}
        obj = {"schema_version": "v1", "structures": [structure], "priority": "express"}
        with pytest.raises(SchemaError, match="priority"):
            PredictRequest.from_json_dict(obj)

    def test_bad_client_id_rejected(self):
        structure = {"atomic_numbers": [1], "positions": [[0.0, 0.0, 0.0]]}
        for bad in ("", 7, "x" * 129):
            obj = {"schema_version": "v1", "structures": [structure], "client_id": bad}
            with pytest.raises(SchemaError, match="client_id"):
                PredictRequest.from_json_dict(obj)


class TestPredictResponse:
    def payload(self) -> PredictionPayload:
        return PredictionPayload(
            key="k" * 64,
            energy=-3.25,
            forces=np.array([[0.1, -0.2, 0.3], [0.0, 0.5, -0.25]]),
            n_atoms=2,
            cached=False,
            batch_graphs=3,
            physical_units=True,
            latency_s=0.002,
        )

    def test_round_trip_bit_exact(self):
        response = PredictResponse(model="prod", results=[self.payload()])
        recovered = PredictResponse.from_json_dict(wire_round_trip(response.to_json_dict()))
        assert recovered.model == "prod"
        (result,) = recovered.results
        assert result.energy == -3.25
        assert np.array_equal(result.forces, self.payload().forces)
        assert result.batch_graphs == 3 and result.physical_units

    def test_to_results_rebuilds_prediction_result(self):
        (result,) = PredictResponse(model="m", results=[self.payload()]).to_results()
        assert result.energy == -3.25
        assert result.n_atoms == 2
        assert result.cached is False
        assert result.forces.shape == (2, 3)

    def test_forces_shape_checked_against_n_atoms(self):
        obj = PredictResponse(model="m", results=[self.payload()]).to_json_dict()
        obj["results"][0]["n_atoms"] = 5
        with pytest.raises(SchemaError, match="expected 5 rows"):
            PredictResponse.from_json_dict(obj)


class TestErrorPayload:
    def test_round_trip_rebuilds_typed_error(self):
        payload = ErrorPayload.from_error(OverloadedError("queue full"))
        recovered = ErrorPayload.from_json_dict(wire_round_trip(payload.to_json_dict()))
        error = recovered.to_error()
        assert isinstance(error, OverloadedError)
        assert error.http_status == 429
        assert "queue full" in str(error)

    def test_unknown_code_degrades_to_base_api_error(self):
        payload = ErrorPayload(code="from_the_future", message="?", status=500)
        error = payload.to_error()
        assert type(error) is ApiError

    def test_status_codes(self):
        assert SchemaError("x").http_status == 400
        assert UnknownModelError("x").http_status == 404
        assert OverloadedError("x").http_status == 429
        assert UnavailableError("x").http_status == 503

    def test_unavailable_round_trip(self):
        """The draining router's 503 rebuilds to the typed error."""
        payload = ErrorPayload.from_error(UnavailableError("draining"))
        recovered = ErrorPayload.from_json_dict(wire_round_trip(payload.to_json_dict()))
        error = recovered.to_error()
        assert isinstance(error, UnavailableError)
        assert error.http_status == 503

    def test_retry_after_round_trips_onto_rebuilt_error(self):
        source = OverloadedError("rate quota")
        source.retry_after_s = 2.5
        payload = ErrorPayload.from_error(source)
        recovered = ErrorPayload.from_json_dict(wire_round_trip(payload.to_json_dict()))
        assert recovered.retry_after_s == 2.5
        assert recovered.to_error().retry_after_s == 2.5

    def test_retry_after_absent_when_error_has_no_hint(self):
        """Additive contract: hint-free errors emit exactly the old keys."""
        obj = ErrorPayload.from_error(OverloadedError("queue full")).to_json_dict()
        assert "retry_after_s" not in obj["error"]
        assert ErrorPayload.from_json_dict(obj).to_error().retry_after_s is None

    def test_bad_retry_after_rejected(self):
        base = ErrorPayload.from_error(OverloadedError("x")).to_json_dict()
        for bad in ("soon", -1.0, float("inf"), True):
            obj = json.loads(json.dumps(base))
            obj["error"]["retry_after_s"] = bad
            with pytest.raises(SchemaError, match="retry_after_s"):
                ErrorPayload.from_json_dict(obj)


class TestServerInfoAndStats:
    def test_server_info_round_trip(self):
        info = ServerInfo(models=[{"name": "a", "loaded": True}], default_model="a")
        recovered = ServerInfo.from_json_dict(wire_round_trip(info.to_json_dict()))
        assert recovered.default_model == "a"
        assert recovered.models[0]["name"] == "a"
        assert "POST /v1/predict" in recovered.endpoints

    def test_stats_round_trip(self):
        snapshot = StatsSnapshot(models={"a": {"serving": {"requests": 4}}})
        recovered = StatsSnapshot.from_json_dict(wire_round_trip(snapshot.to_json_dict()))
        assert recovered.models["a"]["serving"]["requests"] == 4

    def test_stats_identity_fields_round_trip(self):
        """uptime_s/pid/replicas/router are additive top-level fields."""
        snapshot = StatsSnapshot(
            models={"a": {}},
            uptime_s=3.25,
            pid=1234,
            replicas={"0": {"healthy": True, "replica_pid": 77}},
            router={"requests": 9, "admitting": True},
        )
        recovered = StatsSnapshot.from_json_dict(wire_round_trip(snapshot.to_json_dict()))
        assert recovered.uptime_s == 3.25
        assert recovered.pid == 1234
        assert recovered.replicas["0"]["replica_pid"] == 77
        assert recovered.router["admitting"] is True

    def test_stats_identity_fields_are_optional(self):
        """Snapshots from pre-uptime servers must keep parsing (additive)."""
        recovered = StatsSnapshot.from_json_dict({"schema_version": "v1", "models": {}})
        assert recovered.uptime_s is None
        assert recovered.pid is None
        assert recovered.replicas is None
        assert recovered.router is None
        assert "uptime_s" not in recovered.to_json_dict()

    def test_stats_identity_fields_are_validated(self):
        base = {"schema_version": "v1", "models": {}}
        with pytest.raises(SchemaError, match="uptime_s"):
            StatsSnapshot.from_json_dict({**base, "uptime_s": "soon"})
        with pytest.raises(SchemaError, match="pid"):
            StatsSnapshot.from_json_dict({**base, "pid": 1.5})
        with pytest.raises(SchemaError, match="replicas"):
            StatsSnapshot.from_json_dict({**base, "replicas": [1]})
        with pytest.raises(SchemaError, match="router"):
            StatsSnapshot.from_json_dict({**base, "router": "busy"})


class TestGoldenFiles:
    """The committed fixtures pin the wire encoding itself.

    parse -> re-emit must reproduce the golden dict *exactly* — if one
    of these breaks, the change is a wire-format break and needs a
    schema_version bump, not a fixture update.
    """

    @pytest.mark.parametrize(
        "name, schema",
        [
            ("predict_request.json", PredictRequest),
            ("predict_request_identity.json", PredictRequest),
            ("predict_response.json", PredictResponse),
            ("error_overloaded.json", ErrorPayload),
            ("error_retry_after.json", ErrorPayload),
            ("server_info.json", ServerInfo),
            ("stats_snapshot.json", StatsSnapshot),
        ],
    )
    def test_parse_reemit_identity(self, name, schema):
        golden = json.loads((GOLDEN / name).read_text())
        assert schema.from_json_dict(golden).to_json_dict() == golden

    def test_golden_stats_carry_plan_counters(self):
        """The plans section is additive: new counters, same schema v1."""
        golden = json.loads((GOLDEN / "stats_snapshot.json").read_text())
        snapshot = StatsSnapshot.from_json_dict(golden)
        plans = snapshot.models["default"]["plans"]
        assert plans["enabled"] is True
        assert {"plans_compiled", "plan_hits", "plan_misses"} <= plans.keys()

    def test_stats_without_plans_section_still_parse(self):
        """Snapshots from pre-plan servers must keep parsing (additive)."""
        golden = json.loads((GOLDEN / "stats_snapshot.json").read_text())
        del golden["models"]["default"]["plans"]
        snapshot = StatsSnapshot.from_json_dict(golden)
        assert "plans" not in snapshot.models["default"]

    def test_golden_request_structures_build_graphs(self):
        golden = json.loads((GOLDEN / "predict_request.json").read_text())
        request = PredictRequest.from_json_dict(golden)
        molecule, crystal = (s.to_graph(cutoff=4.0) for s in request.structures)
        assert molecule.cell is None and molecule.n_edges > 0
        assert crystal.pbc == (True, True, True) and crystal.n_edges > 0

    def test_golden_error_carries_429(self):
        golden = json.loads((GOLDEN / "error_overloaded.json").read_text())
        error = ErrorPayload.from_json_dict(golden).to_error()
        assert isinstance(error, OverloadedError)

    def test_golden_identity_request_carries_lane_and_client(self):
        """New fields are additive: the old request golden is untouched,
        the new one pins client_id/priority on the wire."""
        golden = json.loads((GOLDEN / "predict_request_identity.json").read_text())
        request = PredictRequest.from_json_dict(golden)
        assert request.client_id == "tenant-42"
        assert request.priority == "bulk"

    def test_golden_retry_after_error_rebuilds_hint(self):
        golden = json.loads((GOLDEN / "error_retry_after.json").read_text())
        error = ErrorPayload.from_json_dict(golden).to_error()
        assert isinstance(error, OverloadedError)
        assert error.retry_after_s == 2.5


class TestStructuresFromJson:
    def structure(self) -> dict:
        return {"atomic_numbers": [1], "positions": [[0.0, 0.0, 0.0]]}

    def test_accepts_request_list_and_single(self):
        single = structures_from_json(self.structure())
        listed = structures_from_json([self.structure(), self.structure()])
        request = structures_from_json(
            {"schema_version": "v1", "structures": [self.structure()]}
        )
        assert len(single) == 1 and len(listed) == 2 and len(request) == 1

    def test_rejects_junk(self):
        with pytest.raises(SchemaError):
            structures_from_json(42)
