"""/v1/relax, schema v2 precomputed edges, and client trajectory sessions."""

import json
import urllib.request

import numpy as np
import pytest

from repro.api import (
    ApiServer,
    Client,
    RelaxRequest,
    RelaxResponse,
    RelaxationPayload,
    SchemaError,
    StructurePayload,
)
from repro.graph import build_edges, canonicalize_edges
from repro.models import HydraModel, ModelConfig
from repro.serving import ModelRegistry, ServiceConfig
from repro.serving.relax import MAX_RELAX_STEPS

CUTOFF = 4.0


def make_registry(**models) -> ModelRegistry:
    registry = ModelRegistry()
    for name, seed in (models or {"tiny": 0}).items():
        registry.register_model(
            name, HydraModel(ModelConfig(hidden_dim=8, num_layers=2), seed=seed)
        )
    return registry


def make_structure(n=10, seed=0) -> StructurePayload:
    rng = np.random.default_rng(seed)
    return StructurePayload(
        atomic_numbers=rng.integers(1, 9, size=n),
        positions=rng.uniform(0.0, 4.5, size=(n, 3)),
    )


@pytest.fixture(scope="module")
def server():
    with ApiServer(
        make_registry(),
        port=0,
        workers=1,
        cutoff=CUTOFF,
        config=ServiceConfig(plan=True),
    ) as api_server:
        yield api_server


def post_json(url: str, payload: dict):
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestRelaxRequestSchema:
    def test_round_trips(self):
        request = RelaxRequest(structure=make_structure(), max_steps=40, fmax=0.1)
        rebuilt = RelaxRequest.from_json_dict(request.to_json_dict())
        assert rebuilt.max_steps == 40
        assert rebuilt.fmax == 0.1
        assert rebuilt.skin is None
        np.testing.assert_array_equal(
            rebuilt.structure.positions, request.structure.positions
        )

    def test_rejects_unknown_keys(self):
        body = RelaxRequest(structure=make_structure()).to_json_dict()
        body["surprise"] = 1
        with pytest.raises(SchemaError, match="unknown key"):
            RelaxRequest.from_json_dict(body)

    @pytest.mark.parametrize("value", [0, MAX_RELAX_STEPS + 1, "ten", 1.5, True])
    def test_rejects_bad_max_steps(self, value):
        body = RelaxRequest(structure=make_structure()).to_json_dict()
        body["max_steps"] = value
        with pytest.raises(SchemaError):
            RelaxRequest.from_json_dict(body)

    @pytest.mark.parametrize("field", ["fmax", "max_step", "skin"])
    @pytest.mark.parametrize("value", [0.0, -1.0, "big", True])
    def test_rejects_bad_floats(self, field, value):
        body = RelaxRequest(structure=make_structure()).to_json_dict()
        body[field] = value
        with pytest.raises(SchemaError):
            RelaxRequest.from_json_dict(body)

    def test_settings_cap_local_callers_too(self):
        """LocalTransport skips wire parsing; the gateway still 400s."""
        request = RelaxRequest(structure=make_structure(), max_steps=MAX_RELAX_STEPS + 1)
        with Client.local(make_registry()) as client:
            with pytest.raises(SchemaError):
                client.transport.relax(request)


class TestSchemaV2Edges:
    def test_v2_round_trips_edges_bit_exactly(self):
        structure = make_structure(seed=1)
        edge_index, edge_shift = canonicalize_edges(
            *build_edges(structure.positions, CUTOFF)
        )
        payload = StructurePayload(
            atomic_numbers=structure.atomic_numbers,
            positions=structure.positions,
            edge_index=edge_index,
            edge_shift=edge_shift,
        )
        from repro.api import PredictRequest

        body = PredictRequest(structures=[payload]).to_json_dict()
        assert body["schema_version"] == "v2"
        rebuilt = PredictRequest.from_json_dict(body).structures[0]
        np.testing.assert_array_equal(rebuilt.edge_index, edge_index)
        assert rebuilt.edge_shift.dtype == edge_shift.dtype
        np.testing.assert_array_equal(rebuilt.edge_shift, edge_shift)

    def test_edge_free_requests_stay_v1(self):
        from repro.api import PredictRequest

        body = PredictRequest(structures=[make_structure()]).to_json_dict()
        assert body["schema_version"] == "v1"

    def test_v1_with_edges_is_rejected(self):
        from repro.api import PredictRequest

        structure = make_structure(seed=2)
        entry = structure.to_json_dict()
        entry["edges"] = {"edge_index": [[0], [1]], "edge_shift": [[0.0, 0.0, 0.0]]}
        with pytest.raises(SchemaError, match="v2"):
            PredictRequest.from_json_dict(
                {"schema_version": "v1", "structures": [entry]}
            )

    def test_v2_edge_validation(self):
        from repro.api import PredictRequest

        structure = make_structure(seed=3, n=4)
        entry = structure.to_json_dict()
        entry["edges"] = {"edge_index": [[0], [9]], "edge_shift": [[0.0, 0.0, 0.0]]}
        with pytest.raises(SchemaError, match="out of range"):
            PredictRequest.from_json_dict(
                {"schema_version": "v2", "structures": [entry]}
            )
        entry["edges"] = {"edge_index": [[0], [1]], "edge_shift": [[1.0, 0.0, 0.0]]}
        with pytest.raises(SchemaError, match="non-periodic"):
            PredictRequest.from_json_dict(
                {"schema_version": "v2", "structures": [entry]}
            )

    def test_precomputed_edges_skip_server_search(self, server):
        """A v2 predict with client edges equals a v1 predict numerically."""
        structure = make_structure(seed=4)
        client = Client.http(server.url)
        plain = client.predict_one(structure)
        edge_index, edge_shift = build_edges(structure.positions, CUTOFF)
        with_edges = client.predict_one(
            StructurePayload(
                atomic_numbers=structure.atomic_numbers,
                positions=structure.positions,
                edge_index=edge_index,
                edge_shift=edge_shift,
            )
        )
        # Identical edge order -> identical batch -> identical floats.
        assert with_edges.energy == plain.energy
        np.testing.assert_array_equal(with_edges.forces, plain.forces)


class TestRelaxEndpoint:
    def test_http_relax_converges(self, server):
        request = RelaxRequest(structure=make_structure(seed=5), max_steps=80, fmax=0.05)
        status, body = post_json(server.url + "/v1/relax", request.to_json_dict())
        assert status == 200
        response = RelaxResponse.from_json_dict(body)
        assert response.model == "tiny"
        assert response.result.converged
        assert response.result.reason in ("fmax", "step")
        assert response.result.energy <= response.result.energy_initial

    def test_response_payload_round_trips(self, server):
        client = Client.http(server.url)
        result = client.relax(make_structure(seed=6), max_steps=40)
        payload = RelaxationPayload.from_result(result)
        rebuilt = RelaxationPayload.from_json_dict(payload.to_json_dict())
        np.testing.assert_array_equal(rebuilt.positions, result.positions)
        np.testing.assert_array_equal(rebuilt.forces, result.forces)
        assert rebuilt.energy == result.energy

    def test_local_and_http_agree(self, server):
        """The same relax over both transports lands on the same geometry."""
        structure = make_structure(seed=7)
        http_result = Client.http(server.url).relax(structure, max_steps=40)
        with Client.local(make_registry(), cutoff=CUTOFF) as local:
            local_result = local.relax(structure, max_steps=40)
        assert local_result.steps == http_result.steps
        assert local_result.reason == http_result.reason
        np.testing.assert_array_equal(local_result.positions, http_result.positions)
        assert local_result.energy == http_result.energy

    def test_unknown_model_is_404(self, server):
        from repro.api import UnknownModelError

        client = Client.http(server.url)
        with pytest.raises(UnknownModelError):
            client.relax(make_structure(), model="nope")

    def test_malformed_body_is_400(self, server):
        import urllib.error

        body = json.dumps({"schema_version": "v1"}).encode()
        request = urllib.request.Request(
            server.url + "/v1/relax",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_relax_endpoint_advertised(self, server):
        info = Client.http(server.url).server_info()
        assert "POST /v1/relax" in info.endpoints

    def test_stats_carry_relax_section(self, server):
        client = Client.http(server.url)
        client.relax(make_structure(seed=8), max_steps=20)
        stats = client.stats()
        relax = stats.models["tiny"]["relax"]
        assert relax["sessions"] >= 1
        assert relax["steps"] >= 1
        assert relax["neighbor_rebuilds"] >= 1


class TestClientTrajectory:
    def test_trajectory_over_http_matches_local(self, server):
        structure = make_structure(seed=9)
        rng = np.random.default_rng(10)
        stream = [structure.positions]
        for _ in range(4):
            stream.append(stream[-1] + rng.normal(0.0, 0.004, size=stream[-1].shape))

        http_client = Client.http(server.url)
        http_traj = http_client.trajectory(
            structure.atomic_numbers, cutoff=CUTOFF, skin=0.4
        )
        http_results = [http_traj.step(p) for p in stream]
        assert http_traj.rebuilds == 1
        assert http_traj.reuses == len(stream) - 1

        with Client.local(make_registry()) as local_client:
            local_traj = local_client.trajectory(
                structure.atomic_numbers, cutoff=CUTOFF, skin=0.4
            )
            local_results = [local_traj.step(p) for p in stream]
        for http_result, local_result in zip(http_results, local_results):
            assert http_result.energy == local_result.energy
            np.testing.assert_array_equal(http_result.forces, local_result.forces)
