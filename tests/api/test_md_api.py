"""/v1/md: wire schemas, streamed frames, chunked resume, fleet stats."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import (
    ApiServer,
    Client,
    DeadlineExceededError,
    MDDivergedError,
    MDFramePayload,
    MDRequest,
    MDResponse,
    MDResultPayload,
    SchemaError,
    StructurePayload,
    TransportError,
    UnknownModelError,
)
from repro.models import HydraModel, ModelConfig
from repro.serving import ModelRegistry, ServiceConfig
from repro.serving.md import MAX_MD_STEPS, MDResult

CUTOFF = 4.0

#: One NVT recipe reused verbatim across transports and chunkings so
#: every comparison below is over the *same* seeded trajectory.
NVT_KNOBS = dict(
    n_steps=30,
    timestep_fs=0.5,
    thermostat="langevin",
    temperature_k=300.0,
    friction=0.05,
    seed=21,
    frame_interval=3,
)


def make_registry(**models) -> ModelRegistry:
    registry = ModelRegistry()
    for name, seed in (models or {"tiny": 0}).items():
        registry.register_model(
            name, HydraModel(ModelConfig(hidden_dim=8, num_layers=2), seed=seed)
        )
    return registry


def make_structure(n=10, seed=0) -> StructurePayload:
    rng = np.random.default_rng(seed)
    return StructurePayload(
        atomic_numbers=rng.integers(1, 9, size=n),
        positions=rng.uniform(0.0, 4.5, size=(n, 3)),
    )


@pytest.fixture(scope="module")
def server():
    with ApiServer(
        make_registry(),
        port=0,
        workers=1,
        cutoff=CUTOFF,
        config=ServiceConfig(plan=True),
    ) as api_server:
        yield api_server


def assert_frames_identical(lhs, rhs):
    assert [f.step for f in lhs] == [f.step for f in rhs]
    for a, b in zip(lhs, rhs):
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.velocities, b.velocities)
        assert a.energy == b.energy
        assert a.kinetic_energy == b.kinetic_energy


class TestMDRequestSchema:
    def test_round_trips_with_velocities(self):
        velocities = np.random.default_rng(0).normal(size=(10, 3))
        request = MDRequest(
            structure=make_structure(),
            n_steps=50,
            thermostat="berendsen",
            temperature_k=500.0,
            step_offset=20,
            velocities=velocities,
        )
        rebuilt = MDRequest.from_json_dict(request.to_json_dict())
        assert rebuilt.n_steps == 50
        assert rebuilt.thermostat == "berendsen"
        assert rebuilt.step_offset == 20
        assert rebuilt.timestep_fs is None
        np.testing.assert_array_equal(rebuilt.velocities, velocities)
        np.testing.assert_array_equal(
            rebuilt.structure.positions, request.structure.positions
        )

    def test_rejects_unknown_keys(self):
        body = MDRequest(structure=make_structure()).to_json_dict()
        body["barostat"] = "parrinello"
        with pytest.raises(SchemaError, match="unknown key"):
            MDRequest.from_json_dict(body)

    @pytest.mark.parametrize("value", [0, MAX_MD_STEPS + 1, "ten", 1.5, True])
    def test_rejects_bad_n_steps(self, value):
        body = MDRequest(structure=make_structure()).to_json_dict()
        body["n_steps"] = value
        with pytest.raises(SchemaError):
            MDRequest.from_json_dict(body)

    @pytest.mark.parametrize("field", ["timestep_fs", "friction", "tau_fs", "skin"])
    @pytest.mark.parametrize("value", [0.0, -1.0, "big", True])
    def test_rejects_bad_floats(self, field, value):
        body = MDRequest(structure=make_structure()).to_json_dict()
        body[field] = value
        with pytest.raises(SchemaError):
            MDRequest.from_json_dict(body)

    def test_rejects_unknown_thermostat_and_bad_temperature(self):
        body = MDRequest(structure=make_structure()).to_json_dict()
        body["thermostat"] = "nose-hoover"
        with pytest.raises(SchemaError, match="thermostat"):
            MDRequest.from_json_dict(body)
        body = MDRequest(structure=make_structure()).to_json_dict()
        body["temperature_k"] = -10.0
        with pytest.raises(SchemaError):
            MDRequest.from_json_dict(body)

    def test_rejects_velocity_shape_mismatch(self):
        body = MDRequest(
            structure=make_structure(n=10), velocities=np.zeros((10, 3))
        ).to_json_dict()
        body["velocities"] = [[0.0, 0.0, 0.0]] * 4
        with pytest.raises(SchemaError, match="velocities"):
            MDRequest.from_json_dict(body)

    def test_rejects_negative_step_offset(self):
        body = MDRequest(structure=make_structure()).to_json_dict()
        body["step_offset"] = -1
        with pytest.raises(SchemaError):
            MDRequest.from_json_dict(body)


class TestMDStreamPayloads:
    def test_frame_payload_round_trips_bit_exactly(self):
        rng = np.random.default_rng(1)
        payload = MDFramePayload(
            step=17,
            energy=-3.25,
            kinetic_energy=0.125,
            temperature_k=271.5,
            positions=rng.uniform(size=(6, 3)),
            velocities=rng.normal(size=(6, 3)),
        )
        rebuilt = MDFramePayload.from_json_dict(json.loads(json.dumps(payload.to_json_dict())))
        assert rebuilt.step == 17
        np.testing.assert_array_equal(rebuilt.positions, payload.positions)
        np.testing.assert_array_equal(rebuilt.velocities, payload.velocities)
        frame = rebuilt.to_frame()
        assert frame.energy == payload.energy
        assert frame.kinetic_energy == payload.kinetic_energy

    def test_result_payload_round_trips(self):
        result = MDResult(
            steps=40,
            first_step=10,
            final_step=50,
            frames=5,
            energy=-1.0,
            kinetic_energy=0.5,
            temperature_k=310.0,
            thermostat="langevin",
            n_atoms=12,
            physical_units=True,
            neighbor_rebuilds=4,
            neighbor_reuses=36,
        )
        response = MDResponse.from_result("tiny", result)
        rebuilt = MDResponse.from_json_dict(json.loads(json.dumps(response.to_json_dict())))
        assert rebuilt.model == "tiny"
        assert rebuilt.to_result() == result

    def test_result_payload_rejects_missing_fields(self):
        with pytest.raises(SchemaError):
            MDResultPayload.from_json_dict({"steps": 1}, where="test")


class TestMDEndpoint:
    def test_http_matches_local_bit_for_bit(self, server):
        structure = make_structure(seed=5)
        http_run = Client.http(server.url).md(structure, **NVT_KNOBS)
        http_frames = http_run.frames()
        with Client.local(make_registry(), cutoff=CUTOFF) as local:
            local_run = local.md(structure, **NVT_KNOBS)
            local_frames = local_run.frames()
        assert_frames_identical(local_frames, http_frames)
        assert http_run.result.steps == local_run.result.steps == 30
        assert http_run.result.thermostat == "langevin"

    def test_chunked_equals_unchunked(self, server):
        structure = make_structure(seed=6)
        client = Client.http(server.url)
        plain = client.md(structure, **NVT_KNOBS)
        plain_frames = plain.frames()
        chunked = client.md(structure, chunk_steps=7, **NVT_KNOBS)
        chunked_frames = chunked.frames()
        assert_frames_identical(plain_frames, chunked_frames)
        assert chunked.result.steps == plain.result.steps
        assert chunked.result.final_step == plain.result.final_step
        assert chunked.resumes == 0

    def test_frame_thinning_and_streamed_steps(self, server):
        frames = Client.http(server.url).md(
            make_structure(seed=7), n_steps=20, timestep_fs=0.5, frame_interval=6
        ).frames()
        assert [f.step for f in frames] == [0, 6, 12, 18, 20]

    def test_raw_ndjson_stream_shape(self, server):
        """The wire format itself: frame lines, then one summary line."""
        body = json.dumps(
            MDRequest(structure=make_structure(seed=8), n_steps=5).to_json_dict()
        ).encode()
        request = urllib.request.Request(
            server.url + "/v1/md",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(line) for line in response.read().splitlines()]
        assert all("frame" in line for line in lines[:-1])
        assert "summary" in lines[-1]
        MDResponse.from_json_dict(lines[-1])

    def test_unknown_model_is_typed_404(self, server):
        with pytest.raises(UnknownModelError):
            Client.http(server.url).md(make_structure(), model="nope").frames()

    def test_pre_stream_validation_is_http_400(self, server):
        body = json.dumps(
            {
                "schema_version": "v1",
                "structure": make_structure().to_json_dict(),
                "thermostat": "langevin",  # temperature_k missing
            }
        ).encode()
        request = urllib.request.Request(
            server.url + "/v1/md",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_divergence_surfaces_as_typed_error(self, server):
        # An absurd timestep blows the first step past the coordinate
        # bound; by then the stream is already open, so the verdict
        # arrives as a mid-stream ``error`` line the client re-raises.
        with pytest.raises(MDDivergedError):
            Client.http(server.url).md(
                make_structure(seed=9),
                n_steps=10,
                timestep_fs=1e8,
                thermostat="langevin",
                temperature_k=300.0,
            ).frames()

    def test_expired_deadline_is_typed_mid_stream(self, server):
        with pytest.raises(DeadlineExceededError):
            Client.http(server.url).md(
                make_structure(seed=10), n_steps=100, deadline_ms=0.001
            ).frames()

    def test_md_endpoint_advertised(self, server):
        info = Client.http(server.url).server_info()
        assert "POST /v1/md" in info.endpoints

    def test_stats_carry_md_section(self, server):
        client = Client.http(server.url)
        client.md(make_structure(seed=11), n_steps=15, timestep_fs=0.5).frames()
        md = client.stats().models["tiny"]["md"]
        assert md["sessions"] >= 1
        assert md["steps"] >= 15
        assert md["steps_per_s"] > 0
        assert md["neighbor_reuse_rate"] > 0
        assert md["thermostats"].get("none", 0) >= 1


class _TruncatingTransport:
    """Delegate that kills the first md stream after a few frames."""

    def __init__(self, inner, fail_after_frames):
        self._inner = inner
        self._fail_after = fail_after_frames
        self.failed = False

    def md(self, request):
        events = self._inner.md(request)
        if self.failed:
            yield from events
            return
        self.failed = True
        seen = 0
        for event in events:
            yield event
            if event[0] == "frame":
                seen += 1
                if seen >= self._fail_after:
                    raise TransportError("injected: replica died mid-stream")


class TestChunkedResume:
    def test_mid_stream_death_resumes_from_last_frame(self, server):
        structure = make_structure(seed=12)
        client = Client.http(server.url)
        baseline = client.md(structure, **NVT_KNOBS).frames()

        run = client.md(structure, chunk_steps=30, **NVT_KNOBS)
        run._transport = _TruncatingTransport(run._transport, fail_after_frames=4)
        frames = run.frames()
        assert run.resumes == 1
        assert_frames_identical(baseline, frames)
        assert run.result.steps == 30

    def test_unchunked_runs_do_not_resume(self, server):
        run = Client.http(server.url).md(make_structure(seed=12), **NVT_KNOBS)
        run._transport = _TruncatingTransport(run._transport, fail_after_frames=2)
        with pytest.raises(TransportError):
            run.frames()

    def test_survives_replica_restart_between_chunks(self):
        """Kill the serving process after chunk one; a replacement on the
        same port finishes the run and the trajectory is unchanged."""
        structure = make_structure(seed=13)
        with Client.local(make_registry(), cutoff=CUTOFF) as local:
            baseline = local.md(structure, **NVT_KNOBS).frames()

        first = ApiServer(make_registry(), port=0, workers=1, cutoff=CUTOFF)
        first.start()
        port = first.bound_port
        client = Client.http(first.url)
        run = client.md(structure, chunk_steps=10, **NVT_KNOBS)
        frames = []
        iterator = iter(run)
        try:
            while len(frames) < 4:  # steps 0,3,6,9 — within chunk one
                frames.append(next(iterator))
        finally:
            first.close()

        with ApiServer(make_registry(), port=port, workers=1, cutoff=CUTOFF):
            frames.extend(iterator)
        assert_frames_identical(baseline, frames)
        assert run.result.steps == 30
