"""Transport equivalence: one client, local or HTTP, identical numbers.

The acceptance bar for the API redesign: a structure POSTed to
``/v1/predict`` on a live server must come back **numerically
identical** — energies and every force component bit-equal — to the
same structure predicted through the in-process path.  The suite runs
the same assertions against both transports (parametrized fixture), and
pins both against a plain ``PredictionService`` reference.
"""

import http.server
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.api import (
    ApiServer,
    Client,
    DEADLINE_HEADER,
    DEFAULT_CUTOFF,
    DeadlineExceededError,
    HttpTransport,
    OverloadedError,
    SchemaError,
    StructurePayload,
    TransportError,
    UnknownModelError,
)
from repro.models import HydraModel, ModelConfig
from repro.serving import ModelRegistry, PredictionService, ServiceConfig
from tests.helpers import make_molecule_graphs, make_periodic_graphs


def make_model() -> HydraModel:
    return HydraModel(ModelConfig(hidden_dim=8, num_layers=2), seed=0)


def make_registry() -> ModelRegistry:
    registry = ModelRegistry()
    registry.register_model("tiny", make_model())
    return registry


@pytest.fixture(params=["local", "http"])
def client(request):
    """The same Client over each transport; tests must not tell them apart."""
    if request.param == "local":
        with Client.local(make_registry(), workers=1) as local_client:
            yield local_client
    else:
        with ApiServer(make_registry(), workers=1) as server:
            with Client.http(server.url) as http_client:
                yield http_client


@pytest.fixture
def structures():
    graphs = make_molecule_graphs(3, seed=0) + make_periodic_graphs(1, seed=1)
    return [StructurePayload.from_graph(graph) for graph in graphs]


@pytest.fixture
def reference(structures):
    """In-process PredictionService over the same derived graphs."""
    graphs = [structure.to_graph(DEFAULT_CUTOFF) for structure in structures]
    return PredictionService(make_model(), ServiceConfig()).predict_many(graphs)


class TestEquivalence:
    def test_results_numerically_identical_to_in_process(
        self, client, structures, reference
    ):
        results = client.predict(structures)
        assert len(results) == len(reference)
        for expected, result in zip(reference, results):
            assert result.energy == expected.energy  # bit-equal, not allclose
            assert np.array_equal(
                result.forces, np.asarray(expected.forces, dtype=np.float64)
            )
            assert result.n_atoms == expected.n_atoms
            assert result.key == expected.key
            assert result.physical_units == expected.physical_units

    def test_accepts_graphs_directly(self, client):
        graph = make_molecule_graphs(1, seed=2)[0]
        result = client.predict_one(graph)
        assert result.n_atoms == graph.n_atoms
        assert np.isfinite(result.energy)

    def test_repeat_is_a_cache_hit_with_identical_numbers(self, client, structures):
        first = client.predict(structures[:1])[0]
        second = client.predict(structures[:1])[0]
        assert first.cached is False
        assert second.cached is True
        assert second.energy == first.energy
        assert np.array_equal(second.forces, first.forces)

    def test_results_keep_request_order(self, client, structures):
        results = client.predict(structures)
        assert [r.n_atoms for r in results] == [
            s.positions.shape[0] for s in structures
        ]


class TestTypedErrorsAcrossTransports:
    def test_unknown_model_raises_same_type(self, client, structures):
        with pytest.raises(UnknownModelError, match="nope"):
            client.predict(structures[:1], model="nope")

    def test_empty_request_raises_same_type(self, client):
        """Local and HTTP must agree that zero structures is an error."""
        with pytest.raises(SchemaError, match="non-empty"):
            client.predict([])

    def test_introspection_shapes_match(self, client):
        info = client.server_info()
        assert [model["name"] for model in info.models] == ["tiny"]
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["models"] == ["tiny"]

    def test_stats_visible_after_traffic(self, client, structures):
        client.predict(structures[:2])
        snapshot = client.stats()
        assert snapshot.models["tiny"]["serving"]["requests"] == 2


@pytest.mark.parametrize("mode", ["local", "http"])
def test_overload_raises_overloaded_error(mode):
    """Admission control surfaces as the same typed error on both transports."""
    config = ServiceConfig(max_pending=1, flush_interval_s=0.5)
    graphs = make_molecule_graphs(6, seed=3)
    if mode == "local":
        with Client.local(make_registry(), config=config, workers=1) as client:
            with pytest.raises(OverloadedError, match="queue full"):
                client.predict(graphs)
    else:
        with ApiServer(make_registry(), config=config, workers=1) as server:
            with Client.http(server.url) as client:
                with pytest.raises(OverloadedError, match="queue full"):
                    client.predict(graphs)


# ----------------------------------------------------------------------
# HTTP transport resilience: timeouts, retries, deadlines
# ----------------------------------------------------------------------
class _ScriptedServer:
    """A real HTTP listener whose per-request behavior is a scripted list.

    Each entry is ``(status, body_dict)`` or ``(status, body_dict,
    extra_headers)``; the last entry repeats forever.  Records every
    request's path and headers so tests can assert what the transport
    actually sent.
    """

    def __init__(self, script):
        self.script = list(script)
        self.requests: list[tuple[str, dict]] = []
        outer = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def _serve(self):
                index = min(len(outer.requests), len(outer.script) - 1)
                outer.requests.append((self.path, dict(self.headers)))
                entry = outer.script[index]
                status, body = entry[0], entry[1]
                extra = entry[2] if len(entry) > 2 else {}
                data = json.dumps(body).encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                for name, value in extra.items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(data)

            do_GET = do_POST = _serve

            def log_message(self, *_args):
                pass

        self.httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.url = f"http://127.0.0.1:{self.httpd.server_address[1]}"
        threading.Thread(target=self.httpd.serve_forever, daemon=True).start()

    def stop(self):
        self.httpd.shutdown()
        self.httpd.server_close()


def _error_503():
    return 503, {
        "schema_version": "v1",
        "error": {"code": "unavailable", "message": "fleet draining", "status": 503},
    }


class TestHttpResilience:
    def test_silent_socket_hits_read_timeout_not_forever(self):
        """A server that accepts the connection and never answers must
        fail the request within read_timeout_s, not hang the client."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]
        transport = HttpTransport(
            f"http://127.0.0.1:{port}",
            connect_timeout_s=2.0,
            read_timeout_s=0.2,
            retries=0,
        )
        start = time.monotonic()
        try:
            with pytest.raises(TransportError, match="timed out"):
                transport.healthz()
        finally:
            listener.close()
        assert time.monotonic() - start < 5.0

    def test_retries_typed_503_then_succeeds(self):
        server = _ScriptedServer([_error_503(), _error_503(), (200, {"status": "ok"})])
        try:
            transport = HttpTransport(server.url, retries=2, backoff_s=0.005)
            assert transport.healthz() == {"status": "ok"}
        finally:
            server.stop()
        assert len(server.requests) == 3
        assert transport.retried == 2

    def test_retries_connection_refused_then_succeeds(self):
        # Reserve a port, point the transport at it while nothing
        # listens (attempt 1: connection refused), then bring the server
        # up before the retry lands.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        transport = HttpTransport(
            f"http://127.0.0.1:{port}", retries=4, backoff_s=0.1, backoff_max_s=0.1
        )
        result: dict = {}

        def call():
            result["payload"] = transport.healthz()

        caller = threading.Thread(target=call)
        caller.start()
        time.sleep(0.05)  # let at least one attempt fail
        httpd = http.server.ThreadingHTTPServer(("127.0.0.1", port), _OkHandler)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        try:
            caller.join(timeout=10.0)
            assert not caller.is_alive()
        finally:
            httpd.shutdown()
            httpd.server_close()
        assert result["payload"] == {"status": "ok"}
        assert transport.retried >= 1

    def test_4xx_is_a_verdict_not_a_glitch(self):
        """Client errors must surface immediately — exactly one request."""
        server = _ScriptedServer(
            [
                (
                    400,
                    {
                        "schema_version": "v1",
                        "error": {"code": "invalid_request", "message": "bad field", "status": 400},
                    },
                )
            ]
        )
        try:
            transport = HttpTransport(server.url, retries=3, backoff_s=0.005)
            with pytest.raises(SchemaError, match="bad field"):
                transport.healthz()
        finally:
            server.stop()
        assert len(server.requests) == 1
        assert transport.retried == 0

    def test_corrupted_body_is_retried(self):
        """Garbage bytes where JSON should be reads as a transport
        glitch: predict is idempotent, so re-asking is safe."""

        class _CorruptOnce:
            served = 0

        outer = _CorruptOnce()

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):
                outer.served += 1
                if outer.served == 1:
                    data = b"\x00CORRUPT{this is not json"
                else:
                    data = json.dumps({"status": "ok"}).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, *_args):
                pass

        httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        try:
            transport = HttpTransport(
                f"http://127.0.0.1:{httpd.server_address[1]}", retries=2, backoff_s=0.005
            )
            assert transport.healthz() == {"status": "ok"}
            assert transport.retried == 1
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_deadline_header_advertises_remaining_budget(self):
        server = _ScriptedServer([(200, {"schema_version": "v1", "results": []})])
        try:
            transport = HttpTransport(server.url, retries=0)
            transport._request("POST", "/v1/predict", {"deadline_ms": 5000.0})
        finally:
            server.stop()
        (_, headers), = server.requests
        advertised = float(headers[DEADLINE_HEADER])
        assert 0.0 < advertised <= 5000.0

    def test_deadline_expires_client_side_during_backoff(self):
        """When the budget cannot survive the backoff sleep, the client
        raises the typed deadline error instead of burning a doomed
        attempt against a dead endpoint."""
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        transport = HttpTransport(
            f"http://127.0.0.1:{port}", retries=5, backoff_s=10.0, backoff_max_s=10.0
        )
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            transport._request("POST", "/v1/predict", {"deadline_ms": 200.0})
        assert time.monotonic() - start < 5.0  # it did not sleep the full backoff

    def test_server_retry_hint_overrides_blind_backoff(self):
        """A 503 carrying retry_after_s paces the retry at the server's
        honest hint, not the (much larger) exponential backoff."""
        hinted = dict(_error_503()[1])
        hinted["error"] = dict(hinted["error"], retry_after_s=0.05)
        server = _ScriptedServer([(503, hinted), (200, {"status": "ok"})])
        try:
            transport = HttpTransport(
                server.url, retries=1, backoff_s=5.0, backoff_max_s=10.0
            )
            start = time.monotonic()
            assert transport.healthz() == {"status": "ok"}
            # Blind backoff would sleep >= 2.5 s; the hint says 50 ms.
            assert time.monotonic() - start < 2.0
        finally:
            server.stop()
        assert len(server.requests) == 2

    def test_retry_after_header_backfills_missing_body_hint(self):
        """Transports must honor the header even when the error body
        predates the retry_after_s field (additive contract both ways)."""
        server = _ScriptedServer(
            [(*_error_503(), {"Retry-After": "1"}), (200, {"status": "ok"})]
        )
        try:
            transport = HttpTransport(
                server.url, retries=1, backoff_s=30.0, backoff_max_s=30.0
            )
            start = time.monotonic()
            assert transport.healthz() == {"status": "ok"}
            elapsed = time.monotonic() - start
            assert 0.9 < elapsed < 5.0  # slept the header's second, not 15-45 s
        finally:
            server.stop()

    def test_quota_429_surfaces_hint_without_retrying(self):
        """429 is a verdict on this client's traffic, not a glitch: it
        is not retried, and the hint rides the typed error for callers
        that want to pace themselves."""
        body = {
            "schema_version": "v1",
            "error": {
                "code": "overloaded",
                "message": "rate quota",
                "status": 429,
                "retry_after_s": 2.5,
            },
        }
        server = _ScriptedServer([(429, body, {"Retry-After": "3"})])
        try:
            transport = HttpTransport(server.url, retries=3, backoff_s=0.005)
            with pytest.raises(OverloadedError) as excinfo:
                transport._request("POST", "/v1/predict", {})
            assert excinfo.value.retry_after_s == 2.5  # body hint wins
        finally:
            server.stop()
        assert len(server.requests) == 1  # exactly one attempt


class _OkHandler(http.server.BaseHTTPRequestHandler):
    def do_GET(self):
        data = json.dumps({"status": "ok"}).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, *_args):
        pass
