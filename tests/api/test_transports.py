"""Transport equivalence: one client, local or HTTP, identical numbers.

The acceptance bar for the API redesign: a structure POSTed to
``/v1/predict`` on a live server must come back **numerically
identical** — energies and every force component bit-equal — to the
same structure predicted through the in-process path.  The suite runs
the same assertions against both transports (parametrized fixture), and
pins both against a plain ``PredictionService`` reference.
"""

import numpy as np
import pytest

from repro.api import (
    ApiServer,
    Client,
    DEFAULT_CUTOFF,
    OverloadedError,
    SchemaError,
    StructurePayload,
    UnknownModelError,
)
from repro.models import HydraModel, ModelConfig
from repro.serving import ModelRegistry, PredictionService, ServiceConfig
from tests.helpers import make_molecule_graphs, make_periodic_graphs


def make_model() -> HydraModel:
    return HydraModel(ModelConfig(hidden_dim=8, num_layers=2), seed=0)


def make_registry() -> ModelRegistry:
    registry = ModelRegistry()
    registry.register_model("tiny", make_model())
    return registry


@pytest.fixture(params=["local", "http"])
def client(request):
    """The same Client over each transport; tests must not tell them apart."""
    if request.param == "local":
        with Client.local(make_registry(), workers=1) as local_client:
            yield local_client
    else:
        with ApiServer(make_registry(), workers=1) as server:
            with Client.http(server.url) as http_client:
                yield http_client


@pytest.fixture
def structures():
    graphs = make_molecule_graphs(3, seed=0) + make_periodic_graphs(1, seed=1)
    return [StructurePayload.from_graph(graph) for graph in graphs]


@pytest.fixture
def reference(structures):
    """In-process PredictionService over the same derived graphs."""
    graphs = [structure.to_graph(DEFAULT_CUTOFF) for structure in structures]
    return PredictionService(make_model(), ServiceConfig()).predict_many(graphs)


class TestEquivalence:
    def test_results_numerically_identical_to_in_process(
        self, client, structures, reference
    ):
        results = client.predict(structures)
        assert len(results) == len(reference)
        for expected, result in zip(reference, results):
            assert result.energy == expected.energy  # bit-equal, not allclose
            assert np.array_equal(
                result.forces, np.asarray(expected.forces, dtype=np.float64)
            )
            assert result.n_atoms == expected.n_atoms
            assert result.key == expected.key
            assert result.physical_units == expected.physical_units

    def test_accepts_graphs_directly(self, client):
        graph = make_molecule_graphs(1, seed=2)[0]
        result = client.predict_one(graph)
        assert result.n_atoms == graph.n_atoms
        assert np.isfinite(result.energy)

    def test_repeat_is_a_cache_hit_with_identical_numbers(self, client, structures):
        first = client.predict(structures[:1])[0]
        second = client.predict(structures[:1])[0]
        assert first.cached is False
        assert second.cached is True
        assert second.energy == first.energy
        assert np.array_equal(second.forces, first.forces)

    def test_results_keep_request_order(self, client, structures):
        results = client.predict(structures)
        assert [r.n_atoms for r in results] == [
            s.positions.shape[0] for s in structures
        ]


class TestTypedErrorsAcrossTransports:
    def test_unknown_model_raises_same_type(self, client, structures):
        with pytest.raises(UnknownModelError, match="nope"):
            client.predict(structures[:1], model="nope")

    def test_empty_request_raises_same_type(self, client):
        """Local and HTTP must agree that zero structures is an error."""
        with pytest.raises(SchemaError, match="non-empty"):
            client.predict([])

    def test_introspection_shapes_match(self, client):
        info = client.server_info()
        assert [model["name"] for model in info.models] == ["tiny"]
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["models"] == ["tiny"]

    def test_stats_visible_after_traffic(self, client, structures):
        client.predict(structures[:2])
        snapshot = client.stats()
        assert snapshot.models["tiny"]["serving"]["requests"] == 2


@pytest.mark.parametrize("mode", ["local", "http"])
def test_overload_raises_overloaded_error(mode):
    """Admission control surfaces as the same typed error on both transports."""
    config = ServiceConfig(max_pending=1, flush_interval_s=0.5)
    graphs = make_molecule_graphs(6, seed=3)
    if mode == "local":
        with Client.local(make_registry(), config=config, workers=1) as client:
            with pytest.raises(OverloadedError, match="queue full"):
                client.predict(graphs)
    else:
        with ApiServer(make_registry(), config=config, workers=1) as server:
            with Client.http(server.url) as client:
                with pytest.raises(OverloadedError, match="queue full"):
                    client.predict(graphs)
