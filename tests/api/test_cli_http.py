"""`repro serve --http` as a real subprocess: startup, traffic, SIGTERM.

The in-process suites cover routing and schemas; what only a subprocess
can cover is the deployment contract: the CLI prints its bound URL on
stdout, serves real sockets, and treats SIGTERM exactly like Ctrl-C —
graceful ``service.stop()`` (drain, then exit 0) plus an autotune-cache
save — which is what lets an orchestrator roll replicas without
dropping admitted requests.
"""

import json
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

from benchmarks.smoke_http_api import start_server as launch_serve_http
from repro.api import PredictResponse

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="POSIX signal semantics required"
)


def start_server(tmp_path, *extra_args) -> tuple[subprocess.Popen, str]:
    """Launch `repro serve --http 0 ...` via the shared CI-smoke helper."""
    return launch_serve_http(str(tmp_path / "autotune.json"), *extra_args)


def wait_healthy(base_url: str, timeout_s: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout_s
    while True:
        try:
            with urllib.request.urlopen(base_url + "/v1/healthz", timeout=1) as response:
                return json.loads(response.read())
        except Exception:  # noqa: BLE001 - retry until the deadline
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)


WATER = {
    "schema_version": "v1",
    "structures": [
        {
            "atomic_numbers": [8, 1, 1],
            "positions": [[0.0, 0.0, 0.117], [0.0, 0.755, -0.471], [0.0, -0.755, -0.471]],
        }
    ],
}


def test_sigterm_is_a_graceful_shutdown(tmp_path):
    process, base_url = start_server(tmp_path)
    try:
        health = wait_healthy(base_url)
        assert health["status"] == "ok"
        assert health["models"] == ["default"]

        request = urllib.request.Request(
            base_url + "/v1/predict",
            data=json.dumps(WATER).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
            predicted = PredictResponse.from_json_dict(json.loads(response.read()))
        assert predicted.results[0].n_atoms == 3

        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()

    assert process.returncode == 0, out
    assert "received SIGTERM" in out
    assert "shutting down" in out
    assert "server stopped cleanly" in out
    # The graceful path saved the autotuner's decision cache for the
    # next replica (even an empty one: the file must exist to warm-start).
    cache = tmp_path / "autotune.json"
    assert cache.exists()
    assert json.loads(cache.read_text())["format"].startswith("repro-autotune-")


def test_http_429_under_tiny_queue_bound(tmp_path):
    """CLI-level admission control: --max-pending 1 turns a burst into 429."""
    process, base_url = start_server(
        tmp_path, "--max-pending", "1", "--flush-interval", "0.5", "--workers", "1"
    )
    try:
        wait_healthy(base_url)
        burst = {
            "schema_version": "v1",
            "structures": [
                {
                    "atomic_numbers": [6, 6],
                    "positions": [[0.0, 0.0, 0.0], [0.0, 0.0, 1.3 + i * 0.01]],
                }
                for i in range(6)
            ],
        }
        request = urllib.request.Request(
            base_url + "/v1/predict",
            data=json.dumps(burst).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 429
        body = json.loads(excinfo.value.read())
        assert body["error"]["code"] == "overloaded"
    finally:
        process.send_signal(signal.SIGTERM)
        try:
            process.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.communicate()


def test_sigint_takes_the_same_path(tmp_path):
    """Ctrl-C and SIGTERM must be indistinguishable to the service."""
    process, base_url = start_server(tmp_path)
    try:
        wait_healthy(base_url)
        process.send_signal(signal.SIGINT)
        out, _ = process.communicate(timeout=30)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
    assert process.returncode == 0, out
    assert "received SIGINT" in out
    assert "server stopped cleanly" in out
