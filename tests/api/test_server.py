"""HTTP front end: routes, status-code mapping, JSON errors, shutdown."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import (
    ApiServer,
    ErrorPayload,
    PredictRequest,
    PredictResponse,
    ServerInfo,
    StatsSnapshot,
    StructurePayload,
)
from repro.models import HydraModel, ModelConfig
from repro.serving import ModelRegistry, ServiceConfig
from tests.helpers import make_molecule_graphs


def make_registry(**models) -> ModelRegistry:
    registry = ModelRegistry()
    for name, seed in (models or {"tiny": 0}).items():
        registry.register_model(
            name, HydraModel(ModelConfig(hidden_dim=8, num_layers=2), seed=seed)
        )
    return registry


@pytest.fixture
def server():
    with ApiServer(make_registry(), port=0, workers=1) as api_server:
        yield api_server


def get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def post(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def post_error(url: str, body: bytes) -> tuple[int, ErrorPayload]:
    """POST raw bytes, expecting a JSON error body."""
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30):
            raise AssertionError("expected an HTTP error")
    except urllib.error.HTTPError as err:
        return err.code, ErrorPayload.from_json_dict(json.loads(err.read()))


def predict_body(count: int = 1, model: str | None = None, seed: int = 0) -> dict:
    graphs = make_molecule_graphs(count, seed=seed)
    return PredictRequest.from_graphs(graphs, model=model).to_json_dict()


class TestRoutes:
    def test_healthz(self, server):
        status, payload = get(server.url + "/v1/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["models"] == ["tiny"]

    def test_models_returns_server_info(self, server):
        status, payload = get(server.url + "/v1/models")
        assert status == 200
        info = ServerInfo.from_json_dict(payload)
        assert [model["name"] for model in info.models] == ["tiny"]

    def test_predict_returns_schema_valid_response(self, server):
        status, payload = post(server.url + "/v1/predict", predict_body(2))
        assert status == 200
        response = PredictResponse.from_json_dict(payload)
        assert response.model == "tiny"
        assert len(response.results) == 2
        for result in response.results:
            assert np.isfinite(result.energy)
            assert result.forces.shape == (result.n_atoms, 3)
            assert np.isfinite(result.forces).all()

    def test_stats_after_traffic(self, server):
        post(server.url + "/v1/predict", predict_body(1))
        status, payload = get(server.url + "/v1/stats")
        assert status == 200
        snapshot = StatsSnapshot.from_json_dict(payload)
        assert snapshot.models["tiny"]["serving"]["requests"] == 1
        assert "batching" in snapshot.models["tiny"]
        plans = snapshot.models["tiny"]["plans"]
        assert plans["enabled"] is True
        assert plans["plans_compiled"] + plans["plan_fallbacks"] >= 1


class TestErrorMapping:
    def test_invalid_json_is_400(self, server):
        status, error = post_error(server.url + "/v1/predict", b"{not json")
        assert status == 400
        assert error.code == "invalid_request"
        assert "JSON" in error.message

    def test_schema_violation_is_400(self, server):
        body = json.dumps({"schema_version": "v1", "structures": [{"bogus": 1}]})
        status, error = post_error(server.url + "/v1/predict", body.encode())
        assert status == 400
        assert error.code == "invalid_request"

    def test_empty_body_is_400(self, server):
        status, error = post_error(server.url + "/v1/predict", b"")
        assert status == 400
        assert "body" in error.message

    def test_malformed_content_length_is_400(self, server):
        """A garbage header is the client's fault, not an internal error."""
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.putrequest("POST", "/v1/predict")
            connection.putheader("Content-Length", "abc")
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 400
            assert json.loads(response.read())["error"]["code"] == "invalid_request"
        finally:
            connection.close()

    def test_rejected_body_does_not_desync_keepalive(self, server):
        """An early-rejected POST must not leave body bytes on the socket.

        The handler rejects a missing Content-Length before reading the
        body; if it kept the connection alive, the unread bytes would be
        parsed as the next request line.  The contract: the connection
        closes, and a *fresh* connection (what any client then opens)
        works normally.
        """
        import http.client

        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            body = json.dumps(predict_body(1)).encode()
            connection.putrequest("POST", "/v1/predict", skip_accept_encoding=True)
            # Lie by omission: body sent, no Content-Length header.
            connection.endheaders()
            connection.send(body)
            response = connection.getresponse()
            assert response.status == 400
            response.read()
            assert response.will_close  # server dropped the desynced connection
        finally:
            connection.close()
        # The server is unharmed for subsequent clients.
        status, _ = post(server.url + "/v1/predict", predict_body(1))
        assert status == 200

    def test_unknown_model_is_404(self, server):
        body = json.dumps(predict_body(1, model="nope"))
        status, error = post_error(server.url + "/v1/predict", body.encode())
        assert status == 404
        assert error.code == "unknown_model"
        assert "nope" in error.message

    def test_unknown_route_is_404_json(self, server):
        try:
            urllib.request.urlopen(server.url + "/v2/everything", timeout=10)
            raise AssertionError("expected an HTTP error")
        except urllib.error.HTTPError as err:
            assert err.code == 404
            assert ErrorPayload.from_json_dict(json.loads(err.read())).code == "not_found"

    def test_overload_is_429(self):
        """A tiny queue bound + slow flush tick turns the Nth structure into 429."""
        config = ServiceConfig(max_pending=1, flush_interval_s=0.5)
        with ApiServer(make_registry(), config=config, workers=1) as server:
            body = json.dumps(predict_body(6)).encode()
            status, error = post_error(server.url + "/v1/predict", body)
            assert status == 429
            assert error.code == "overloaded"
            assert "retry" in error.message


def post_raw(url: str, body: bytes, headers: dict | None = None):
    """POST and return (status, response headers, parsed JSON body)."""
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json", **(headers or {})}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


class TestOverloadProtection:
    """Per-client quotas, identity headers, Retry-After, saturation."""

    def test_429_carries_retry_after_header(self):
        config = ServiceConfig(max_pending=1, flush_interval_s=0.5)
        with ApiServer(make_registry(), config=config, workers=1) as server:
            body = json.dumps(predict_body(6)).encode()
            status, headers, payload = post_raw(server.url + "/v1/predict", body)
            assert status == 429
            assert int(headers["Retry-After"]) >= 1

    def test_rate_quota_keyed_on_client_header(self):
        config = ServiceConfig(client_rate=0.001, client_burst=1.0)
        with ApiServer(make_registry(), config=config, workers=1) as server:
            url = server.url + "/v1/predict"
            body = json.dumps(predict_body(1)).encode()
            identity = {"X-Repro-Client": "tenant-a"}
            status, _, _ = post_raw(url, body, headers=identity)
            assert status == 200
            status, headers, payload = post_raw(url, body, headers=identity)
            assert status == 429
            assert payload["error"]["code"] == "overloaded"
            assert "rate quota" in payload["error"]["message"]
            # The honest hint rides both the header and the body.
            assert int(headers["Retry-After"]) >= 1
            assert payload["error"]["retry_after_s"] > 0
            # Anonymous requests and other tenants are unaffected.
            assert post_raw(url, body)[0] == 200
            assert post_raw(url, body, headers={"X-Repro-Client": "tenant-b"})[0] == 200

    def test_body_client_id_charges_the_same_bucket(self):
        config = ServiceConfig(client_rate=0.001, client_burst=1.0)
        with ApiServer(make_registry(), config=config, workers=1) as server:
            url = server.url + "/v1/predict"
            obj = predict_body(1)
            obj["client_id"] = "tenant-a"
            body = json.dumps(obj).encode()
            assert post_raw(url, body)[0] == 200
            # Second request names the same tenant via the header instead.
            status, _, _ = post_raw(
                url, json.dumps(predict_body(1)).encode(),
                headers={"X-Repro-Client": "tenant-a"},
            )
            assert status == 429

    def test_invalid_priority_header_is_400(self, server):
        body = json.dumps(predict_body(1)).encode()
        status, _, payload = post_raw(
            server.url + "/v1/predict", body, headers={"X-Repro-Priority": "express"}
        )
        assert status == 400
        assert payload["error"]["code"] == "invalid_request"
        assert "X-Repro-Priority" in payload["error"]["message"]

    def test_oversized_client_header_is_400(self, server):
        body = json.dumps(predict_body(1)).encode()
        status, _, payload = post_raw(
            server.url + "/v1/predict", body, headers={"X-Repro-Client": "x" * 200}
        )
        assert status == 400
        assert "client" in payload["error"]["message"].lower()

    def test_priority_header_accepted_on_success_path(self, server):
        body = json.dumps(predict_body(1)).encode()
        status, _, payload = post_raw(
            server.url + "/v1/predict", body,
            headers={"X-Repro-Priority": "background", "X-Repro-Client": "batch-job"},
        )
        assert status == 200
        assert PredictResponse.from_json_dict(payload).results

    def test_healthz_reports_saturation(self, server):
        post(server.url + "/v1/predict", predict_body(1))
        status, payload = get(server.url + "/v1/healthz")
        assert status == 200
        saturation = payload["saturation"]
        assert saturation["queue_depth"] == 0
        assert saturation["estimated_wait_s"] >= 0.0
        assert saturation["brownout_level"] == 0
        assert saturation["brownout_state"] == "normal"

    def test_stats_carry_admission_section(self, server):
        post(server.url + "/v1/predict", predict_body(1))
        status, payload = get(server.url + "/v1/stats")
        assert status == 200
        section = payload["models"]["tiny"]["admission"]
        assert section["lanes"]["interactive"]["admitted"] >= 1
        assert section["brownout"]["state"] == "normal"
        assert "shed_predicted" in payload["models"]["tiny"]["batching"]


class TestModelSelection:
    def test_single_model_is_implicit_default(self, server):
        status, payload = post(server.url + "/v1/predict", predict_body(1))
        assert status == 200 and payload["model"] == "tiny"

    def test_multi_model_requires_explicit_name(self):
        registry = make_registry(alpha=0, beta=1)
        with ApiServer(registry, workers=1) as server:
            body = json.dumps(predict_body(1)).encode()
            status, error = post_error(server.url + "/v1/predict", body)
            assert status == 400
            assert "request.model is required" in error.message
            status, payload = post(server.url + "/v1/predict", predict_body(1, model="beta"))
            assert status == 200 and payload["model"] == "beta"

    def test_multi_model_with_configured_default(self):
        registry = make_registry(alpha=0, beta=1)
        with ApiServer(registry, workers=1, default_model="alpha") as server:
            status, payload = post(server.url + "/v1/predict", predict_body(1))
            assert status == 200 and payload["model"] == "alpha"


class TestLifecycle:
    def test_close_is_graceful_and_idempotent(self):
        server = ApiServer(make_registry(), workers=2).start()
        post(server.url + "/v1/predict", predict_body(2))
        server.close()
        server.close()  # idempotent
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(server.url + "/v1/healthz", timeout=2)

    def test_close_saves_autotune_cache(self, tmp_path):
        cache_path = tmp_path / "autotune.json"
        config = ServiceConfig(autotune_cache=str(cache_path))
        with ApiServer(make_registry(), config=config, workers=1) as server:
            post(server.url + "/v1/predict", predict_body(1))
        assert cache_path.exists()
        assert json.loads(cache_path.read_text())["format"].startswith("repro-autotune-")

    def test_ephemeral_port_is_reported(self, server):
        assert server.port > 0
        assert server.url.endswith(str(server.port))


class TestWireExactness:
    def test_identical_request_hits_cache_with_identical_numbers(self, server):
        body = predict_body(1)
        _, first = post(server.url + "/v1/predict", body)
        _, second = post(server.url + "/v1/predict", body)
        assert first["results"][0]["cached"] is False
        assert second["results"][0]["cached"] is True
        assert first["results"][0]["energy"] == second["results"][0]["energy"]
        assert first["results"][0]["forces"] == second["results"][0]["forces"]

    def test_wire_positions_do_not_perturb_results(self, server):
        """positions -> JSON -> positions is the identity, so keys collide."""
        graph = make_molecule_graphs(1, seed=4)[0]
        payload = StructurePayload.from_graph(graph)
        round_tripped = StructurePayload.from_json_dict(
            json.loads(json.dumps(payload.to_json_dict()))
        )
        body = PredictRequest(structures=[payload]).to_json_dict()
        body_rt = PredictRequest(structures=[round_tripped]).to_json_dict()
        _, first = post(server.url + "/v1/predict", body)
        _, second = post(server.url + "/v1/predict", body_rt)
        assert second["results"][0]["cached"] is True  # same structure hash
        assert first["results"][0]["key"] == second["results"][0]["key"]
