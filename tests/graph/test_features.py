"""Featurization: RBF expansion, cutoff envelope, species vocabulary."""

import numpy as np
import pytest

from repro.graph.features import SpeciesVocabulary, cosine_cutoff, gaussian_rbf
from repro.graph.stats import corpus_stats, degree_histogram
from tests.helpers import make_molecule_graphs


class TestGaussianRBF:
    def test_shape(self):
        out = gaussian_rbf(np.linspace(0, 5, 7), cutoff=5.0, num_basis=16)
        assert out.shape == (7, 16)

    def test_peak_at_center(self):
        centers = np.linspace(0.0, 5.0, 8)
        out = gaussian_rbf(np.array([centers[3]]), cutoff=5.0, num_basis=8)
        assert out[0].argmax() == 3
        assert out[0, 3] == pytest.approx(1.0)

    def test_distinguishes_distances(self):
        out = gaussian_rbf(np.array([1.0, 4.0]), cutoff=5.0, num_basis=8)
        assert not np.allclose(out[0], out[1])


class TestCosineCutoff:
    def test_boundary_values(self):
        env = cosine_cutoff(np.array([0.0, 2.5, 5.0, 6.0]), cutoff=5.0)
        assert env[0] == pytest.approx(1.0)
        assert env[1] == pytest.approx(0.5)
        assert env[2] == pytest.approx(0.0, abs=1e-12)
        assert env[3] == 0.0

    def test_monotone_decreasing(self):
        env = cosine_cutoff(np.linspace(0, 5, 50), cutoff=5.0)
        assert (np.diff(env) <= 1e-12).all()


class TestVocabulary:
    def test_encode_passthrough(self):
        vocab = SpeciesVocabulary()
        z = np.array([1, 6, 8, 78])
        assert np.array_equal(vocab.encode(z), z)

    def test_rejects_out_of_range(self):
        vocab = SpeciesVocabulary(max_z=94)
        with pytest.raises(ValueError):
            vocab.encode(np.array([95]))
        with pytest.raises(ValueError):
            vocab.encode(np.array([0]))

    def test_size_covers_range(self):
        assert SpeciesVocabulary(max_z=94).size == 95


class TestStats:
    def test_corpus_stats_totals(self):
        graphs = make_molecule_graphs(4)
        stats = corpus_stats(graphs)
        assert stats.num_graphs == 4
        assert stats.num_nodes == sum(g.n_atoms for g in graphs)
        assert stats.nodes_per_graph == pytest.approx(stats.num_nodes / 4)
        assert stats.mean_degree > 0

    def test_degree_histogram_sums_to_nodes(self):
        graph = make_molecule_graphs(1)[0]
        histogram = degree_histogram(graph)
        assert histogram.sum() == graph.n_atoms
