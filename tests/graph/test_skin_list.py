"""Skin neighbor-list correctness: incremental must equal from-scratch.

The contract under test is bit-identity: at every trajectory step the
:class:`SkinNeighborList`'s re-filtered candidate edges, in canonical
order, must equal ``canonicalize_edges(*build_edges(...))`` exactly —
same indices, same float32 shift bits.  Anything weaker would let the
incremental serving path drift from the from-scratch one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.radius import (
    SkinNeighborList,
    build_edges,
    canonicalize_edges,
    periodic_radius_graph,
)

#: A deliberately skewed triclinic cell — face heights differ per axis,
#: so the periodic image enumeration is exercised asymmetrically.
TRICLINIC = np.array(
    [
        [6.2, 0.0, 0.0],
        [1.9, 5.7, 0.0],
        [-1.1, 0.8, 5.3],
    ]
)


def random_walk(positions: np.ndarray, steps: int, scale: float, seed: int):
    """MD-like displacement stream: small correlated random moves."""
    rng = np.random.default_rng(seed)
    current = positions.copy()
    for _ in range(steps):
        current = current + rng.normal(0.0, scale, size=positions.shape)
        yield current


def reference_edges(positions, cutoff, cell=None, pbc=(False, False, False)):
    return canonicalize_edges(*build_edges(positions, cutoff, cell, pbc))


def assert_bit_identical(actual, expected):
    actual_index, actual_shift = actual
    expected_index, expected_shift = expected
    assert np.array_equal(actual_index, expected_index)
    assert actual_shift.dtype == expected_shift.dtype
    assert np.array_equal(actual_shift, expected_shift)


class TestIncrementalEqualsFromScratch:
    def test_triclinic_pbc_trajectory(self):
        """Every step of a periodic random walk matches a fresh build exactly."""
        rng = np.random.default_rng(7)
        positions = rng.uniform(0.0, 5.0, size=(24, 3))
        pbc = (True, True, True)
        nl = SkinNeighborList(cutoff=3.5, skin=0.4)
        for current in random_walk(positions, steps=40, scale=0.01, seed=11):
            incremental = nl.update(current, TRICLINIC, pbc)
            assert_bit_identical(
                incremental, reference_edges(current, 3.5, TRICLINIC, pbc)
            )
        assert nl.rebuilds >= 1
        assert nl.reuses > nl.rebuilds  # the walk is small; reuse dominates

    def test_matches_periodic_radius_graph_directly(self):
        """The reference path is the real periodic search, not a stand-in."""
        rng = np.random.default_rng(3)
        positions = rng.uniform(0.0, 5.0, size=(16, 3))
        pbc = (True, True, True)
        nl = SkinNeighborList(cutoff=3.0, skin=0.3)
        incremental = nl.update(positions, TRICLINIC, pbc)
        expected = canonicalize_edges(
            *periodic_radius_graph(positions, TRICLINIC, pbc, 3.0)
        )
        assert_bit_identical(incremental, expected)

    def test_open_boundary_trajectory(self):
        rng = np.random.default_rng(5)
        positions = rng.uniform(0.0, 6.0, size=(20, 3))
        nl = SkinNeighborList(cutoff=4.0, skin=0.5)
        for current in random_walk(positions, steps=30, scale=0.015, seed=13):
            assert_bit_identical(
                nl.update(current), reference_edges(current, 4.0)
            )
        assert nl.reuses > 0

    def test_mixed_pbc_axes(self):
        """Slab-style (True, True, False) periodicity also round-trips."""
        rng = np.random.default_rng(9)
        positions = rng.uniform(0.0, 5.0, size=(18, 3))
        pbc = (True, True, False)
        nl = SkinNeighborList(cutoff=3.2, skin=0.35)
        for current in random_walk(positions, steps=15, scale=0.012, seed=17):
            assert_bit_identical(
                nl.update(current, TRICLINIC, pbc),
                reference_edges(current, 3.2, TRICLINIC, pbc),
            )

    def test_max_neighbors_trim_matches(self):
        rng = np.random.default_rng(21)
        positions = rng.uniform(0.0, 4.0, size=(20, 3))
        pbc = (True, True, True)
        nl = SkinNeighborList(cutoff=3.5, skin=0.4, max_neighbors=6)
        for current in random_walk(positions, steps=10, scale=0.01, seed=23):
            expected = canonicalize_edges(*build_edges(current, 3.5, TRICLINIC, pbc))
            from repro.graph.radius import trim_max_neighbors

            expected = trim_max_neighbors(current, *expected, max_neighbors=6)
            assert_bit_identical(nl.update(current, TRICLINIC, pbc), expected)


class TestRebuildPolicy:
    def test_small_steps_reuse(self):
        rng = np.random.default_rng(1)
        positions = rng.uniform(0.0, 5.0, size=(12, 3))
        nl = SkinNeighborList(cutoff=3.0, skin=0.4)
        nl.update(positions)
        nl.update(positions + 0.01)  # well inside skin/2
        assert (nl.rebuilds, nl.reuses) == (1, 1)

    def test_displacement_past_skin_bound_forces_rebuild(self):
        """One atom moving >= skin/2 from the reference invalidates the cache."""
        rng = np.random.default_rng(2)
        positions = rng.uniform(0.0, 5.0, size=(12, 3))
        nl = SkinNeighborList(cutoff=3.0, skin=0.4)
        nl.update(positions)
        moved = positions.copy()
        moved[0, 0] += 0.25  # past skin / 2 = 0.2: 2 * disp >= skin, must rebuild
        nl.update(moved)
        assert (nl.rebuilds, nl.reuses) == (2, 0)
        # Displacement is measured against the *reference* positions, so a
        # slow drift eventually rebuilds even though per-step moves are tiny.
        drifting = moved.copy()
        for _ in range(30):
            drifting = drifting + 0.02
            nl.update(drifting)
        assert nl.rebuilds > 2

    def test_cell_change_invalidates(self):
        rng = np.random.default_rng(4)
        positions = rng.uniform(0.0, 5.0, size=(10, 3))
        pbc = (True, True, True)
        nl = SkinNeighborList(cutoff=3.0, skin=0.4)
        nl.update(positions, TRICLINIC, pbc)
        strained = TRICLINIC * 1.01
        edges = nl.update(positions, strained, pbc)
        assert (nl.rebuilds, nl.reuses) == (2, 0)
        assert_bit_identical(edges, reference_edges(positions, 3.0, strained, pbc))

    def test_pbc_change_invalidates(self):
        rng = np.random.default_rng(6)
        positions = rng.uniform(0.0, 5.0, size=(10, 3))
        nl = SkinNeighborList(cutoff=3.0, skin=0.4)
        nl.update(positions, TRICLINIC, (True, True, True))
        edges = nl.update(positions, TRICLINIC, (True, False, False))
        assert (nl.rebuilds, nl.reuses) == (2, 0)
        assert_bit_identical(
            edges, reference_edges(positions, 3.0, TRICLINIC, (True, False, False))
        )

    def test_atom_count_change_invalidates(self):
        rng = np.random.default_rng(8)
        positions = rng.uniform(0.0, 5.0, size=(10, 3))
        nl = SkinNeighborList(cutoff=3.0, skin=0.4)
        nl.update(positions)
        smaller = positions[:7]
        edges = nl.update(smaller)
        assert (nl.rebuilds, nl.reuses) == (2, 0)
        assert_bit_identical(edges, reference_edges(smaller, 3.0))


class TestCanonicalOrder:
    def test_total_order_is_construction_independent(self):
        """Shuffled edges canonicalize back to the same arrays."""
        rng = np.random.default_rng(10)
        positions = rng.uniform(0.0, 5.0, size=(14, 3))
        edge_index, edge_shift = build_edges(
            positions, 3.5, TRICLINIC, (True, True, True)
        )
        canon = canonicalize_edges(edge_index, edge_shift)
        perm = rng.permutation(edge_index.shape[1])
        shuffled = canonicalize_edges(edge_index[:, perm], edge_shift[perm])
        assert_bit_identical(shuffled, canon)

    def test_empty_graph_passthrough(self):
        edge_index = np.zeros((2, 0), dtype=np.int64)
        edge_shift = np.zeros((0, 3), dtype=np.float32)
        out_index, out_shift = canonicalize_edges(edge_index, edge_shift)
        assert out_index.shape == (2, 0)
        assert out_shift.shape == (0, 3)

    def test_isolated_atoms_produce_empty_edges(self):
        positions = np.array([[0.0, 0.0, 0.0], [50.0, 50.0, 50.0]])
        nl = SkinNeighborList(cutoff=2.0, skin=0.3)
        edge_index, edge_shift = nl.update(positions)
        assert edge_index.shape == (2, 0)
        assert edge_shift.shape == (0, 3)


class TestValidation:
    @pytest.mark.parametrize("cutoff,skin", [(0.0, 0.3), (-1.0, 0.3), (3.0, 0.0), (3.0, -0.1)])
    def test_rejects_non_positive_parameters(self, cutoff, skin):
        with pytest.raises(ValueError):
            SkinNeighborList(cutoff=cutoff, skin=skin)
