"""Graph batching (collation) semantics."""

import numpy as np
import pytest

from repro.graph.batch import batch_iterator, collate
from tests.helpers import make_molecule_graphs, make_periodic_graphs


class TestCollate:
    def test_counts_add_up(self):
        graphs = make_molecule_graphs(5)
        batch = collate(graphs)
        assert batch.num_graphs == 5
        assert batch.num_nodes == sum(g.n_atoms for g in graphs)
        assert batch.num_edges == sum(g.n_edges for g in graphs)

    def test_edge_offsets(self):
        graphs = make_molecule_graphs(3)
        batch = collate(graphs)
        offset = graphs[0].n_atoms
        second_graph_edges = batch.edge_index[:, graphs[0].n_edges : graphs[0].n_edges + graphs[1].n_edges]
        assert np.array_equal(second_graph_edges - offset, graphs[1].edge_index)

    def test_node_graph_vector(self):
        graphs = make_molecule_graphs(3)
        batch = collate(graphs)
        counts = np.bincount(batch.node_graph)
        assert list(counts) == [g.n_atoms for g in graphs]

    def test_energies_column_vector(self):
        graphs = make_molecule_graphs(4)
        batch = collate(graphs)
        assert batch.energies.shape == (4, 1)
        assert np.allclose(batch.energies.ravel(), [g.energy for g in graphs], rtol=1e-6)

    def test_mixed_periodic_and_molecular(self):
        graphs = make_molecule_graphs(2) + make_periodic_graphs(2)
        batch = collate(graphs)
        assert batch.num_graphs == 4
        # Periodic graphs contribute nonzero shifts; molecular all-zero.
        assert np.abs(batch.edge_shift).max() > 0

    def test_float32_output(self):
        batch = collate(make_molecule_graphs(2))
        assert batch.positions.dtype == np.float32
        assert batch.forces.dtype == np.float32

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            collate([])

    def test_nbytes_positive(self):
        assert collate(make_molecule_graphs(2)).nbytes() > 0


class TestBatchIterator:
    def test_covers_all_graphs(self):
        graphs = make_molecule_graphs(10)
        batches = list(batch_iterator(graphs, batch_size=3))
        assert [b.num_graphs for b in batches] == [3, 3, 3, 1]

    def test_shuffle_changes_order_not_content(self):
        graphs = make_molecule_graphs(8)
        rng = np.random.default_rng(0)
        shuffled = list(batch_iterator(graphs, 8, rng))[0]
        plain = list(batch_iterator(graphs, 8))[0]
        assert sorted(shuffled.energies.ravel()) == pytest.approx(
            sorted(plain.energies.ravel())
        )

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(batch_iterator(make_molecule_graphs(2), 0))


class TestPerGraphSplit:
    def test_node_counts_and_offsets(self):
        graphs = make_molecule_graphs(3)
        batch = collate(graphs)
        counts = batch.node_counts()
        assert counts.tolist() == [g.n_atoms for g in graphs]
        offsets = batch.node_offsets()
        assert offsets[0] == 0
        assert offsets[-1] == batch.num_nodes

    def test_split_node_array_inverts_collate(self):
        graphs = make_molecule_graphs(4)
        batch = collate(graphs)
        pieces = batch.split_node_array(batch.forces)
        assert len(pieces) == len(graphs)
        for graph, piece in zip(graphs, pieces):
            np.testing.assert_allclose(piece, graph.forces.astype(np.float32))

    def test_split_rejects_wrong_length(self):
        batch = collate(make_molecule_graphs(2))
        with pytest.raises(ValueError):
            batch.split_node_array(np.zeros((batch.num_nodes + 1, 3)))
