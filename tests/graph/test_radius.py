"""Neighbor-search correctness, including periodic boundaries."""

import numpy as np
import pytest

from repro.graph.radius import (
    build_edges,
    periodic_radius_graph,
    radius_graph,
    trim_max_neighbors,
)


class TestOpenBoundary:
    def test_pair_within_cutoff(self):
        positions = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        edges, shifts = radius_graph(positions, cutoff=1.5)
        assert edges.shape == (2, 2)  # both directions
        assert np.allclose(shifts, 0.0)

    def test_pair_outside_cutoff(self):
        positions = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        edges, _ = radius_graph(positions, cutoff=1.5)
        assert edges.shape[1] == 0

    def test_directed_symmetry(self):
        rng = np.random.default_rng(0)
        positions = rng.uniform(0, 5, size=(20, 3))
        edges, _ = radius_graph(positions, cutoff=2.0)
        pairs = {(int(s), int(d)) for s, d in edges.T}
        assert all((d, s) in pairs for s, d in pairs)

    def test_no_self_edges(self):
        rng = np.random.default_rng(1)
        positions = rng.uniform(0, 3, size=(10, 3))
        edges, _ = radius_graph(positions, cutoff=2.5)
        assert (edges[0] != edges[1]).all()

    def test_empty_input(self):
        edges, shifts = radius_graph(np.zeros((0, 3)), cutoff=1.0)
        assert edges.shape == (2, 0)
        assert shifts.shape == (0, 3)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(2)
        positions = rng.uniform(0, 4, size=(15, 3))
        cutoff = 1.8
        edges, _ = radius_graph(positions, cutoff)
        found = {(int(s), int(d)) for s, d in edges.T}
        expected = set()
        for i in range(15):
            for j in range(15):
                if i != j and np.linalg.norm(positions[i] - positions[j]) < cutoff:
                    expected.add((i, j))
        assert found == expected


class TestPeriodic:
    def test_neighbor_across_boundary(self):
        # Two atoms 0.6 apart through the x boundary of a 4-angstrom box.
        cell = np.diag([4.0, 4.0, 4.0])
        positions = np.array([[0.2, 2.0, 2.0], [3.8, 2.0, 2.0]])
        edges, shifts = periodic_radius_graph(positions, cell, (True, True, True), cutoff=1.0)
        assert edges.shape[1] == 2
        vectors = positions[edges[1]] - (positions[edges[0]] + shifts)
        distances = np.linalg.norm(vectors, axis=1)
        assert np.allclose(distances, 0.4, atol=1e-12)

    def test_self_image_edges_in_small_cell(self):
        # One atom in a cell smaller than the cutoff sees its own images.
        cell = np.diag([2.0, 10.0, 10.0])
        positions = np.array([[1.0, 5.0, 5.0]])
        edges, shifts = periodic_radius_graph(positions, cell, (True, False, False), cutoff=3.0)
        assert edges.shape[1] == 2  # +x and -x images
        assert set(np.round(shifts[:, 0])) == {-2.0, 2.0}

    def test_pbc_flags_respected(self):
        cell = np.diag([4.0, 4.0, 20.0])
        positions = np.array([[2.0, 2.0, 0.2], [2.0, 2.0, 19.8]])
        edges, _ = periodic_radius_graph(positions, cell, (True, True, False), cutoff=1.0)
        assert edges.shape[1] == 0  # z is not periodic

    def test_periodic_edge_count_vs_brute_force(self):
        rng = np.random.default_rng(3)
        cell = np.diag([5.0, 5.0, 5.0])
        positions = rng.uniform(0, 5, size=(8, 3))
        cutoff = 2.0
        edges, shifts = periodic_radius_graph(positions, cell, (True, True, True), cutoff)
        # Brute force over 3^3 images.
        count = 0
        for i in range(8):
            for j in range(8):
                for sx in (-1, 0, 1):
                    for sy in (-1, 0, 1):
                        for sz in (-1, 0, 1):
                            if i == j and sx == sy == sz == 0:
                                continue
                            shift = np.array([sx, sy, sz]) @ cell
                            if np.linalg.norm(positions[j] - positions[i] - shift) < cutoff:
                                count += 1
        assert edges.shape[1] == count

    def test_distances_all_within_cutoff(self):
        rng = np.random.default_rng(4)
        cell = np.diag([6.0, 6.0, 6.0])
        positions = rng.uniform(0, 6, size=(12, 3))
        edges, shifts = periodic_radius_graph(positions, cell, (True, True, True), 2.5)
        vectors = positions[edges[1]] - (positions[edges[0]] + shifts)
        assert (np.linalg.norm(vectors, axis=1) < 2.5).all()


def _periodic_radius_graph_loop(positions, cell, pbc, cutoff):
    """Reference per-destination-loop implementation (pre-vectorization).

    Kept verbatim from the original code so the vectorized production
    path can be checked edge-for-edge (same order, same shifts).
    """
    from scipy.spatial import cKDTree

    from repro.graph.radius import _shift_ranges

    positions = np.asarray(positions, dtype=np.float64)
    cell = np.asarray(cell, dtype=np.float64).reshape(3, 3)
    n = positions.shape[0]
    ranges = _shift_ranges(cell, pbc, cutoff)
    shifts_int = np.array(np.meshgrid(*ranges, indexing="ij")).reshape(3, -1).T
    shifts_cart = shifts_int @ cell
    num_images = shifts_cart.shape[0]
    replicated = (positions[None, :, :] + shifts_cart[:, None, :]).reshape(-1, 3)
    source_atom = np.tile(np.arange(n), num_images)
    source_shift = np.repeat(np.arange(num_images), n)
    tree = cKDTree(replicated)
    neighbor_lists = tree.query_ball_point(positions, r=cutoff)
    src_list, dst_list, shift_list = [], [], []
    zero_image = int(np.flatnonzero((shifts_int == 0).all(axis=1))[0])
    for dst_atom, hits in enumerate(neighbor_lists):
        hits = np.asarray(hits, dtype=np.int64)
        if hits.size == 0:
            continue
        src_atoms = source_atom[hits]
        images = source_shift[hits]
        keep = ~((src_atoms == dst_atom) & (images == zero_image))
        src_atoms, images = src_atoms[keep], images[keep]
        src_list.append(src_atoms)
        dst_list.append(np.full(src_atoms.shape[0], dst_atom, dtype=np.int64))
        shift_list.append(shifts_cart[images])
    if not src_list:
        return np.zeros((2, 0), dtype=np.int64), np.zeros((0, 3), dtype=np.float32)
    edge_index = np.stack([np.concatenate(src_list), np.concatenate(dst_list)])
    return edge_index.astype(np.int64), np.concatenate(shift_list).astype(np.float32)


class TestVectorizedEquivalence:
    """The vectorized periodic path must reproduce the loop version."""

    TRICLINIC = np.array([[5.0, 0.0, 0.0], [1.5, 4.5, 0.0], [0.8, 1.1, 4.0]])

    def test_triclinic_pbc_matches_loop(self):
        rng = np.random.default_rng(7)
        frac = rng.uniform(0, 1, size=(14, 3))
        positions = frac @ self.TRICLINIC
        edges, shifts = periodic_radius_graph(
            positions, self.TRICLINIC, (True, True, True), cutoff=2.4
        )
        ref_edges, ref_shifts = _periodic_radius_graph_loop(
            positions, self.TRICLINIC, (True, True, True), cutoff=2.4
        )
        assert edges.shape[1] > 0  # the case actually exercises edges
        np.testing.assert_array_equal(edges, ref_edges)
        np.testing.assert_allclose(shifts, ref_shifts, atol=0.0)
        assert shifts.dtype == ref_shifts.dtype

    def test_partial_pbc_and_self_images_match_loop(self):
        # Small cell → self-image edges; mixed pbc flags → axis gating.
        cell = np.array([[1.8, 0.0, 0.0], [0.4, 6.0, 0.0], [0.0, 0.7, 6.5]])
        positions = np.array([[0.3, 1.0, 1.0], [1.2, 4.8, 5.2], [0.9, 2.5, 3.0]])
        for pbc in [(True, False, True), (True, True, True), (False, False, False)]:
            edges, shifts = periodic_radius_graph(positions, cell, pbc, cutoff=2.2)
            ref_edges, ref_shifts = _periodic_radius_graph_loop(
                positions, cell, pbc, cutoff=2.2
            )
            np.testing.assert_array_equal(edges, ref_edges)
            np.testing.assert_allclose(shifts, ref_shifts, atol=0.0)

    def test_no_edges_case(self):
        cell = np.diag([30.0, 30.0, 30.0])
        positions = np.array([[1.0, 1.0, 1.0], [15.0, 15.0, 15.0]])
        edges, shifts = periodic_radius_graph(positions, cell, (True, True, True), 1.0)
        assert edges.shape == (2, 0)
        assert shifts.shape == (0, 3)


class TestShiftRangeMemoization:
    """Repeated builds with one cell reuse the precomputed face geometry."""

    def setup_method(self):
        from repro.graph import radius

        radius._SHIFT_RANGES_CACHE.clear()

    def test_same_cell_bytes_reuse_cached_ranges(self):
        from repro.graph.radius import _SHIFT_RANGES_CACHE, _shift_ranges

        cell = np.array([[5.0, 0.0, 0.0], [1.5, 4.5, 0.0], [0.8, 1.1, 4.0]])
        first = _shift_ranges(cell, (True, True, True), 2.4)
        # A *copy* with the same bytes hits the same entry — the key is
        # the cell's contents, not the array object.
        second = _shift_ranges(cell.copy(), (True, True, True), 2.4)
        assert all(a is b for a, b in zip(first, second))
        assert len(_SHIFT_RANGES_CACHE) == 1

    def test_cutoff_and_pbc_are_part_of_the_key(self):
        from repro.graph.radius import _SHIFT_RANGES_CACHE, _shift_ranges

        cell = np.diag([4.0, 4.0, 4.0])
        _shift_ranges(cell, (True, True, True), 2.0)
        _shift_ranges(cell, (True, True, True), 3.0)
        _shift_ranges(cell, (True, False, True), 2.0)
        assert len(_SHIFT_RANGES_CACHE) == 3

    def test_memoized_build_edges_is_identical(self):
        rng = np.random.default_rng(9)
        cell = np.array([[5.0, 0.0, 0.0], [1.5, 4.5, 0.0], [0.8, 1.1, 4.0]])
        positions = rng.uniform(0, 1, size=(10, 3)) @ cell
        cold_edges, cold_shifts = periodic_radius_graph(
            positions, cell, (True, True, True), 2.4
        )
        warm_edges, warm_shifts = periodic_radius_graph(
            positions, cell, (True, True, True), 2.4
        )
        np.testing.assert_array_equal(cold_edges, warm_edges)
        np.testing.assert_array_equal(cold_shifts, warm_shifts)

    def test_cache_bound_is_enforced(self):
        from repro.graph import radius

        for index in range(radius._SHIFT_RANGES_CACHE_MAX + 8):
            radius._shift_ranges(np.diag([4.0, 4.0, 4.0]), (True, True, True), 2.0 + index * 0.01)
        assert len(radius._SHIFT_RANGES_CACHE) <= radius._SHIFT_RANGES_CACHE_MAX


class TestMaxNeighbors:
    def test_cap_applies_per_destination(self):
        # A dense cluster: every atom sees all others without the cap.
        rng = np.random.default_rng(5)
        positions = rng.uniform(0, 1.0, size=(10, 3))
        edges, shifts = build_edges(positions, cutoff=5.0, max_neighbors=3)
        degrees = np.bincount(edges[1], minlength=10)
        assert (degrees == 3).all()

    def test_cap_keeps_nearest(self):
        positions = np.array(
            [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [2.0, 0.0, 0.0], [3.0, 0.0, 0.0]]
        )
        edges, shifts = build_edges(positions, cutoff=10.0, max_neighbors=1)
        kept = {(int(s), int(d)) for s, d in edges.T}
        # Each atom keeps only its nearest neighbor as in-edge.
        assert (1, 0) in kept and (2, 3) in kept

    def test_no_cap_is_identity(self):
        rng = np.random.default_rng(6)
        positions = rng.uniform(0, 3, size=(8, 3))
        edges_a, _ = build_edges(positions, cutoff=2.0)
        edges_b, _ = trim_max_neighbors(positions, edges_a, np.zeros((edges_a.shape[1], 3)), 10**6)
        assert np.array_equal(np.sort(edges_a.T, axis=0), np.sort(edges_b.T, axis=0))

    def test_empty_edges(self):
        edges, shifts = trim_max_neighbors(
            np.zeros((3, 3)), np.zeros((2, 0), dtype=np.int64), np.zeros((0, 3)), 5
        )
        assert edges.shape == (2, 0)
