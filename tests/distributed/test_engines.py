"""DDP / ZeRO engines: exact equivalences the paper's stack relies on."""

import numpy as np
import pytest

from repro.data import Normalizer, generate_corpus
from repro.distributed import DataParallelEngine, SimCluster, shard_round_robin
from repro.distributed.data_parallel import flatten_grads, unflatten_to_grads
from repro.graph.batch import collate
from repro.models import HydraModel, ModelConfig
from repro.optim import Adam


@pytest.fixture(scope="module")
def workload():
    corpus = generate_corpus(48, seed=41)
    normalizer = Normalizer.fit(corpus.graphs)
    return corpus.graphs[:16], normalizer


CONFIG = ModelConfig(hidden_dim=16, num_layers=2)


class TestFlattening:
    def test_roundtrip(self):
        model = HydraModel(CONFIG, seed=0)
        for index, param in enumerate(model.parameters()):
            param.grad = np.full_like(param.data, float(index))
        flat = flatten_grads(model.parameters())
        copy = HydraModel(CONFIG, seed=0)
        unflatten_to_grads(copy.parameters(), flat)
        for pa, pb in zip(model.parameters(), copy.parameters()):
            assert np.array_equal(pa.grad, pb.grad)

    def test_missing_grads_become_zero(self):
        model = HydraModel(CONFIG, seed=0)
        flat = flatten_grads(model.parameters())
        assert flat.shape == (model.num_parameters(),)
        assert np.allclose(flat, 0.0)

    def test_size_mismatch_rejected(self):
        model = HydraModel(CONFIG, seed=0)
        with pytest.raises(ValueError):
            unflatten_to_grads(model.parameters(), np.zeros(3))

    def test_shard_round_robin(self):
        shards = shard_round_robin(list(range(10)), 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        assert sorted(x for s in shards for x in s) == list(range(10))

    def test_shard_starvation_rejected(self):
        with pytest.raises(ValueError):
            shard_round_robin([1], 2)


class TestDDP:
    def test_replicas_identical_at_init(self, workload):
        graphs, normalizer = workload
        engine = DataParallelEngine(SimCluster(4), CONFIG, normalizer, seed=1)
        assert engine.replicas_in_sync()

    def test_replicas_stay_in_sync_over_steps(self, workload):
        graphs, normalizer = workload
        engine = DataParallelEngine(SimCluster(4), CONFIG, normalizer, seed=1)
        for _ in range(3):
            engine.train_step(graphs)
        assert engine.replicas_in_sync()

    def test_ddp_matches_single_process_gradients(self, workload):
        """With equal shards, averaged DDP grads equal a weighted single-
        process computation of the same per-shard losses."""
        graphs, normalizer = workload
        cluster = SimCluster(4)
        engine = DataParallelEngine(cluster, CONFIG, normalizer, seed=2)
        shards = shard_round_robin(graphs, 4)
        # Reference: average of per-shard gradient computations.
        reference_model = HydraModel(CONFIG, seed=2)
        accumulated = np.zeros(reference_model.num_parameters())
        for shard in shards:
            reference_model.zero_grad()
            batch = collate(shard)
            loss = reference_model.loss(
                reference_model(batch),
                normalizer.normalized_energy(batch),
                normalizer.normalized_forces(batch),
            )
            loss.backward()
            accumulated += flatten_grads(reference_model.parameters())
        accumulated /= 4.0
        engine.train_step(graphs)
        # After the engine step, rank grads hold the all-reduced average.
        rank_grads = flatten_grads(engine.models[0].parameters())
        assert np.allclose(rank_grads, accumulated, atol=1e-6)

    def test_training_reduces_loss(self, workload):
        graphs, normalizer = workload
        engine = DataParallelEngine(SimCluster(2), CONFIG, normalizer, seed=3, learning_rate=3e-3)
        first = engine.train_step(graphs)
        for _ in range(6):
            last = engine.train_step(graphs)
        assert last < first

    def test_unknown_optimizer_rejected(self, workload):
        graphs, normalizer = workload
        with pytest.raises(ValueError):
            DataParallelEngine(SimCluster(2), CONFIG, normalizer, optimizer="lamb")


class TestZeRO:
    def test_zero_equals_vanilla_adam_bitwise(self, workload):
        """The ZeRO paper's core guarantee: sharding is semantics-free."""
        graphs, normalizer = workload
        ddp = DataParallelEngine(SimCluster(4), CONFIG, normalizer, optimizer="adam", seed=4)
        zero = DataParallelEngine(SimCluster(4), CONFIG, normalizer, optimizer="zero", seed=4)
        for _ in range(3):
            loss_a = ddp.train_step(graphs)
            loss_b = zero.train_step(graphs)
            assert loss_a == loss_b
        state_a = ddp.models[0].state_dict()
        state_b = zero.models[0].state_dict()
        for key in state_a:
            assert np.array_equal(state_a[key], state_b[key]), key

    def test_zero_replicas_in_sync(self, workload):
        graphs, normalizer = workload
        engine = DataParallelEngine(SimCluster(4), CONFIG, normalizer, optimizer="zero", seed=5)
        engine.train_step(graphs)
        assert engine.replicas_in_sync()

    def test_optimizer_state_sharded(self, workload):
        """Per-rank Adam state must be ~1/R of the replicated state."""
        graphs, normalizer = workload
        cluster_full = SimCluster(4)
        cluster_zero = SimCluster(4)
        full = DataParallelEngine(cluster_full, CONFIG, normalizer, optimizer="adam", seed=6)
        zero = DataParallelEngine(cluster_zero, CONFIG, normalizer, optimizer="zero", seed=6)
        full.train_step(graphs)
        zero.train_step(graphs)
        full_states = [
            t.snapshot().by_category["optimizer_states"] for t in cluster_full.trackers()
        ]
        zero_states = [
            t.snapshot().by_category["optimizer_states"] for t in cluster_zero.trackers()
        ]
        assert sum(zero_states) == pytest.approx(full_states[0], rel=0.01)
        assert max(zero_states) < full_states[0] * 0.45  # balanced partition

    def test_partition_balanced(self, workload):
        graphs, normalizer = workload
        engine = DataParallelEngine(SimCluster(4), CONFIG, normalizer, optimizer="zero", seed=7)
        engine.train_step(graphs)
        per_rank = engine._zero.state_nbytes_per_rank()
        assert max(per_rank) < 2.0 * min(per_rank) + 1024

    def test_zero_adds_comm_time(self, workload):
        graphs, normalizer = workload
        cluster_a = SimCluster(4)
        cluster_z = SimCluster(4)
        DataParallelEngine(cluster_a, CONFIG, normalizer, optimizer="adam", seed=8).train_step(graphs)
        DataParallelEngine(cluster_z, CONFIG, normalizer, optimizer="zero", seed=8).train_step(graphs)
        assert cluster_z.ranks[0].comm_time > cluster_a.ranks[0].comm_time


class TestDDStore:
    def test_local_and_remote_hits(self, workload):
        from repro.hpc import DDStore

        graphs, _ = workload
        cluster = SimCluster(4)
        store = DDStore(cluster, graphs)
        local = store.get(0, requesting_rank=store.owner_of(0))
        assert store.local_hits == 1 and store.remote_hits == 0
        remote_rank = (store.owner_of(1) + 1) % 4
        store.get(1, requesting_rank=remote_rank)
        assert store.remote_hits == 1
        assert store.bytes_transferred > 0
        assert cluster.ranks[remote_rank].comm_time > 0
        assert local is graphs[0]

    def test_remote_fraction(self, workload):
        from repro.hpc import DDStore

        graphs, _ = workload
        cluster = SimCluster(2)
        store = DDStore(cluster, graphs)
        store.get_batch(list(range(len(graphs))), requesting_rank=0)
        assert 0.0 < store.remote_fraction < 1.0
