"""Simulated cluster collectives: semantics and modeled cost."""

import numpy as np
import pytest

from repro.distributed import CommCostModel, SimCluster
from repro.hpc.perlmutter import PERLMUTTER


class TestCollectives:
    def test_all_reduce_mean(self):
        cluster = SimCluster(4)
        arrays = [np.full(8, float(r)) for r in range(4)]
        out = cluster.all_reduce_mean(arrays)
        for result in out:
            assert np.allclose(result, 1.5)

    def test_all_reduce_sum(self):
        cluster = SimCluster(3)
        out = cluster.all_reduce_sum([np.ones(4) for _ in range(3)])
        assert np.allclose(out[0], 3.0)

    def test_reduce_scatter_shards(self):
        cluster = SimCluster(2)
        arrays = [np.arange(8.0), np.arange(8.0)]
        shards = cluster.reduce_scatter_mean(arrays)
        assert np.allclose(shards[0], np.arange(4.0))
        assert np.allclose(shards[1], np.arange(4.0, 8.0))

    def test_all_gather_concatenates(self):
        cluster = SimCluster(2)
        out = cluster.all_gather([np.array([1.0]), np.array([2.0, 3.0])])
        for result in out:
            assert np.allclose(result, [1.0, 2.0, 3.0])

    def test_broadcast(self):
        cluster = SimCluster(3)
        out = cluster.broadcast(np.array([7.0]))
        assert len(out) == 3
        assert all(np.allclose(o, 7.0) for o in out)

    def test_broadcast_copies(self):
        cluster = SimCluster(2)
        source = np.array([1.0])
        out = cluster.broadcast(source)
        out[0][0] = 99.0
        assert source[0] == 1.0

    def test_shape_mismatch_rejected(self):
        cluster = SimCluster(2)
        with pytest.raises(ValueError):
            cluster.all_reduce_mean([np.ones(3), np.ones(4)])

    def test_wrong_rank_count_rejected(self):
        cluster = SimCluster(2)
        with pytest.raises(ValueError):
            cluster.all_reduce_mean([np.ones(3)])

    def test_collectives_advance_all_clocks(self):
        cluster = SimCluster(4)
        cluster.all_reduce_mean([np.ones(1000) for _ in range(4)])
        assert all(rank.clock > 0 for rank in cluster.ranks)
        assert all(rank.comm_time == rank.clock for rank in cluster.ranks)

    def test_single_rank_cluster(self):
        cluster = SimCluster(1)
        out = cluster.all_reduce_mean([np.ones(4)])
        assert np.allclose(out[0], 1.0)
        assert cluster.ranks[0].clock == 0.0  # no communication needed


class TestCostModel:
    def test_allreduce_scales_with_bytes(self):
        cost = CommCostModel(4)
        assert cost.all_reduce(1e9) > cost.all_reduce(1e6)

    def test_single_rank_is_free(self):
        cost = CommCostModel(1)
        assert cost.all_reduce(1e9) == 0.0
        assert cost.all_gather(1e9) == 0.0

    def test_allreduce_is_two_phase(self):
        cost = CommCostModel(4)
        n = 1e8
        assert cost.all_reduce(n) == pytest.approx(
            cost.reduce_scatter(n) + cost.all_gather(n)
        )

    def test_inter_node_slower_than_intra(self):
        """Rings beyond one node ride the NIC, not NVLink."""
        intra = CommCostModel(4).all_reduce(1e9)
        inter = CommCostModel(8).all_reduce(1e9)
        assert inter > intra * 2

    def test_known_bandwidth_formula(self):
        cost = CommCostModel(4)
        n = 1e9
        expected = 2 * (3 / 4) * n / PERLMUTTER.nvlink_bandwidth + 2 * 3 * PERLMUTTER.nvlink_latency
        assert cost.all_reduce(n) == pytest.approx(expected)
