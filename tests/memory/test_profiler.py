"""Measured profiler and its agreement with the analytic byte model."""

import numpy as np
import pytest

from repro.data import Normalizer, generate_corpus
from repro.graph.batch import collate
from repro.memory import (
    estimate_peak_memory,
    profile_training_step,
    to_paper_breakdown,
)
from repro.memory.analytic import activation_bytes, checkpointed_activation_bytes
from repro.models import HydraModel, ModelConfig, count_parameters
from repro.optim import SGD, Adam


@pytest.fixture(scope="module")
def workload():
    corpus = generate_corpus(60, seed=51)
    normalizer = Normalizer.fit(corpus.graphs)
    return corpus.graphs[:12], normalizer


class TestProfiler:
    def test_breakdown_sums_to_100(self, workload):
        graphs, normalizer = workload
        model = HydraModel(ModelConfig(hidden_dim=32, num_layers=2), seed=0)
        profile = profile_training_step(model, graphs, Adam(model.parameters()), normalizer)
        assert sum(profile.paper_breakdown().values()) == pytest.approx(100.0, abs=1e-6)

    def test_activations_dominate_large_batch(self, workload):
        """The Sec. V-A observation on a small-model/large-batch regime."""
        graphs, normalizer = workload
        model = HydraModel(ModelConfig(hidden_dim=64, num_layers=3), seed=0)
        profile = profile_training_step(model, graphs, Adam(model.parameters()), normalizer)
        breakdown = profile.paper_breakdown()
        assert breakdown["activations"] > 50.0

    def test_optimizer_states_twice_weights_with_adam(self, workload):
        graphs, normalizer = workload
        model = HydraModel(ModelConfig(hidden_dim=48, num_layers=3), seed=0)
        profile = profile_training_step(model, graphs, Adam(model.parameters()), normalizer)
        weights = profile.peak.by_category["weights"]
        states = profile.peak.by_category["optimizer_states"]
        assert states == pytest.approx(2 * weights, rel=0.01)

    def test_sgd_has_no_optimizer_state(self, workload):
        graphs, normalizer = workload
        model = HydraModel(ModelConfig(hidden_dim=32, num_layers=2), seed=0)
        profile = profile_training_step(
            model, graphs, SGD(model.parameters(), lr=1e-3), normalizer
        )
        assert profile.peak.by_category["optimizer_states"] == 0

    def test_checkpointing_reduces_peak(self, workload):
        graphs, normalizer = workload
        config = ModelConfig(hidden_dim=64, num_layers=3)
        plain = HydraModel(config, seed=0)
        ckpt = HydraModel(config.with_checkpointing(True), seed=0)
        peak_plain = profile_training_step(
            plain, graphs, Adam(plain.parameters()), normalizer
        ).peak_bytes
        peak_ckpt = profile_training_step(
            ckpt, graphs, Adam(ckpt.parameters()), normalizer
        ).peak_bytes
        assert peak_ckpt < 0.7 * peak_plain

    def test_phase_times_positive(self, workload):
        graphs, normalizer = workload
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
        profile = profile_training_step(model, graphs, Adam(model.parameters()), normalizer)
        assert profile.forward_seconds > 0
        assert profile.backward_seconds > 0
        assert profile.step_seconds > profile.forward_seconds

    def test_paper_breakdown_folds_gradients_into_others(self):
        from repro.tensor.allocator import MemorySnapshot

        snapshot = MemorySnapshot(
            {"weights": 10, "gradients": 30, "activations": 40, "optimizer_states": 10, "other": 10},
            100,
        )
        folded = to_paper_breakdown(snapshot)
        assert folded["others"] == pytest.approx(40.0)


class TestAnalyticModel:
    def test_matches_measured_activations(self, workload):
        """The inventory-based formula must track real allocations."""
        graphs, normalizer = workload
        config = ModelConfig(hidden_dim=64, num_layers=3)
        model = HydraModel(config, seed=0)
        profile = profile_training_step(model, graphs, Adam(model.parameters()), normalizer)
        batch = collate(graphs)
        predicted = activation_bytes(config, batch.num_nodes, batch.num_edges)
        measured = profile.peak.by_category["activations"]
        assert predicted == pytest.approx(measured, rel=0.25)

    def test_total_estimate_tracks_measurement(self, workload):
        graphs, normalizer = workload
        config = ModelConfig(hidden_dim=48, num_layers=2)
        model = HydraModel(config, seed=0)
        profile = profile_training_step(model, graphs, Adam(model.parameters()), normalizer)
        batch = collate(graphs)
        estimate = estimate_peak_memory(config, batch.num_nodes, batch.num_edges, batch.num_graphs)
        assert estimate.total == pytest.approx(profile.peak_bytes, rel=0.35)

    def test_checkpointed_less_than_full(self):
        config = ModelConfig(hidden_dim=128, num_layers=4)
        full = activation_bytes(config, 1000, 20000)
        ckpt = checkpointed_activation_bytes(config, 1000, 20000)
        assert ckpt < full / 2

    def test_zero_ranks_shard_states(self):
        config = ModelConfig(hidden_dim=128, num_layers=3)
        single = estimate_peak_memory(config, 500, 8000, zero_ranks=1)
        sharded = estimate_peak_memory(config, 500, 8000, zero_ranks=4)
        assert sharded.optimizer_states == single.optimizer_states // 4
        assert sharded.weights == single.weights

    def test_paper_scale_estimate_fits_a100(self):
        """A 2B-param model without techniques cannot fit one A100; the
        paper's motivation for Sec. V."""
        from repro.hpc.perlmutter import PERLMUTTER
        from repro.models import solve_width

        config = solve_width(2_000_000_000, num_layers=3)
        # Modest per-GPU batch: four OC20-like graphs.
        estimate = estimate_peak_memory(config, 300, 12800)
        assert estimate.total > PERLMUTTER.gpu_memory_bytes
        params = count_parameters(config)
        assert estimate.weights == 4 * params
        assert estimate.optimizer_states == 8 * params

    def test_sgd_option(self):
        config = ModelConfig(hidden_dim=32, num_layers=2)
        estimate = estimate_peak_memory(config, 100, 1000, optimizer="sgd")
        assert estimate.optimizer_states == 0

    def test_unknown_optimizer_rejected(self):
        with pytest.raises(ValueError):
            estimate_peak_memory(ModelConfig(), 10, 10, optimizer="lamb")
