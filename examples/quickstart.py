"""Quickstart: train a small foundation-style GNN on the aggregated corpus.

Covers the core loop of the library in ~40 lines:

1. generate an aggregated multi-source corpus (the paper's Table I mix),
2. build an EGNN with energy + force heads (HydraGNN architecture),
3. train with Adam on normalized multi-task targets,
4. evaluate on a held-out test set drawn from the full corpus.

Run:  python examples/quickstart.py
"""

from repro.data import Normalizer, generate_corpus
from repro.models import HydraModel, ModelConfig, count_parameters
from repro.train import Trainer, TrainerConfig

def main() -> None:
    # 1. Data: five synthetic sources mixed in the paper's byte proportions.
    corpus = generate_corpus(total_graphs=300, seed=0)
    train_corpus, test_graphs = corpus.train_test_split(test_fraction=0.15, seed=1)
    normalizer = Normalizer.fit(corpus.graphs)
    print(
        f"corpus: {corpus.num_graphs} graphs, {corpus.total_bytes / 1e6:.1f} MB "
        f"(represents {corpus.paper_tb():.1f} TB at paper scale)"
    )

    # 2. Model: EGNN backbone + graph-level energy head + node-level force head.
    config = ModelConfig(hidden_dim=32, num_layers=3)
    model = HydraModel(config, seed=0)
    print(f"model: width={config.hidden_dim} depth={config.num_layers} "
          f"({count_parameters(config):,} parameters)")

    # 3. Train with the paper's protocol (Adam, fixed-epoch budget).
    trainer = Trainer(
        model,
        normalizer,
        TrainerConfig(epochs=5, batch_size=16, learning_rate=1e-3, grad_clip=1.0),
    )
    history = trainer.fit(train_corpus.graphs, test_graphs, verbose=True)

    # 4. Report the held-out metrics.
    print("\nfinal held-out metrics:")
    for name, value in history.final_metrics.items():
        print(f"  {name:12s} {value:.4f}")


if __name__ == "__main__":
    main()
