"""Distributed data-parallel training on the simulated cluster.

Demonstrates the paper's infrastructure stack end to end: an ADIOS-like
shard store feeding a DDStore-style distributed in-memory cache, DDP
across four simulated A100 ranks, ZeRO-1 optimizer sharding, and the
modeled communication clock.

Run:  python examples/distributed_training.py
"""

import tempfile

import numpy as np

from repro.data import AdiosShardStore, Normalizer, generate_corpus
from repro.distributed import DataParallelEngine, SimCluster
from repro.hpc import DDStore, PERLMUTTER
from repro.models import ModelConfig


def main() -> None:
    # --- data path: generate -> shard store -> distributed cache --------
    corpus = generate_corpus(200, seed=40)
    with tempfile.TemporaryDirectory() as root:
        manifest = AdiosShardStore(root).write(corpus.graphs, shard_size=64)
        print(f"shard store: {len(manifest['shards'])} shards, "
              f"{manifest['total_bytes'] / 1e6:.1f} MB, "
              f"{manifest['num_graphs']} graphs")
        graphs = AdiosShardStore(root).read()

    cluster = SimCluster(4, spec=PERLMUTTER)
    store = DDStore(cluster, graphs)
    normalizer = Normalizer.fit(graphs)

    # --- training: DDP + ZeRO on 4 ranks --------------------------------
    engine = DataParallelEngine(
        cluster,
        ModelConfig(hidden_dim=32, num_layers=3, checkpoint_activations=True),
        normalizer,
        optimizer="zero",
        learning_rate=1e-3,
        seed=40,
    )

    rng = np.random.default_rng(0)
    steps = 8
    batch_size = 16
    for step in range(steps):
        indices = rng.choice(len(graphs), size=batch_size, replace=False)
        # Each rank pulls its shard through the distributed store.
        batch = []
        for rank in range(cluster.num_ranks):
            shard_idx = indices[rank::cluster.num_ranks]
            batch.extend(store.get_batch(list(shard_idx), requesting_rank=rank))
        loss = engine.train_step(batch)
        print(f"step {step}: loss {loss:.4f}")

    # --- what the simulation knows afterwards ---------------------------
    print(f"\nreplicas in sync: {engine.replicas_in_sync()}")
    print(f"DDStore locality: {100 * (1 - store.remote_fraction):.0f}% local hits, "
          f"{store.bytes_transferred / 1e6:.2f} MB moved between ranks")
    states = [t.snapshot().by_category['optimizer_states'] for t in cluster.trackers()]
    print("per-rank Adam state (ZeRO-sharded): "
          + ", ".join(f"{s / 1e3:.0f} KB" for s in states))
    print(f"simulated clock: {cluster.max_clock():.3f} s total, of which "
          f"{cluster.ranks[0].comm_time * 1e3:.2f} ms modeled NVLink communication")


if __name__ == "__main__":
    main()
