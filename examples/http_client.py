"""HTTP serving walkthrough: one Client, in-process and over the wire.

Covers the deployment story of `repro.api` end to end:

1. register a model in a `ModelRegistry` and start a real `ApiServer`
   on an ephemeral port (the same server `repro serve --http PORT` runs),
2. drive it with `Client.http(...)` — POST structures, read energies
   and forces, inspect `/v1/models` and `/v1/stats`,
3. drive the *same* registry with `Client.local(...)` and verify the
   two transports return bit-identical numbers,
4. trip admission control (HTTP 429 as a typed `OverloadedError`).

Run:  python examples/http_client.py
"""

import numpy as np

from repro.api import ApiServer, Client, OverloadedError, StructurePayload
from repro.data import generate_corpus
from repro.models import HydraModel, ModelConfig
from repro.serving import ModelRegistry, ServiceConfig


def main() -> None:
    # 1. A registry with one resident model, served over HTTP.  Real
    # deployments would register_checkpoint(...) trained artifacts.
    registry = ModelRegistry()
    registry.register_model("demo", HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0))
    corpus = generate_corpus(total_graphs=6, seed=0)

    with ApiServer(registry, port=0, workers=2) as server:
        print(f"server listening on {server.url}")

        # 2. Remote client: the wire format is versioned JSON, so this is
        # exactly what a curl / non-Python client would see.
        remote = Client.http(server.url)
        print(f"health: {remote.healthz()['status']}")
        print(f"models: {[m['name'] for m in remote.server_info().models]}")

        results = remote.predict(corpus.graphs)
        print("\nper-structure predictions (HTTP):")
        for graph, result in zip(corpus.graphs, results):
            print(
                f"  {graph.source:8s} {result.n_atoms:3d} atoms  "
                f"energy {result.energy:+9.4f}  "
                f"mean|F| {float(np.abs(result.forces).mean()):.4f}  "
                f"cached={result.cached}"
            )

        telemetry = remote.stats().models["demo"]
        print(
            f"\nserver stats: {telemetry['serving']['requests']} requests, "
            f"{telemetry['serving']['batches']} micro-batches, "
            f"cache hit rate {telemetry['serving']['cache_hit_rate']:.0%}"
        )

        # 3. Local client over the same registry: same code path, no
        # sockets.  The wire format round-trips float64 bit-exactly, so
        # the two transports agree to the last bit.
        local = Client.local(registry)
        local_results = local.predict(corpus.graphs)
        identical = all(
            http.energy == inproc.energy and np.array_equal(http.forces, inproc.forces)
            for http, inproc in zip(results, local_results)
        )
        print(f"HTTP == in-process, bit-exact: {identical}")
        local.close()

    # 4. Admission control: a queue bound of 1 with a slow flush tick
    # rejects a burst — clients see a typed, retryable error (HTTP 429).
    overload_config = ServiceConfig(max_pending=1, flush_interval_s=0.5)
    with ApiServer(registry, config=overload_config, workers=1) as server:
        client = Client.http(server.url)
        payloads = [StructurePayload.from_graph(g) for g in corpus.graphs]
        try:
            client.predict(payloads)
        except OverloadedError as error:
            print(f"burst of {len(payloads)} rejected as expected: {error}")


if __name__ == "__main__":
    main()
