"""Measure what activation checkpointing and ZeRO buy you (Sec. V).

Profiles one real training step in three configurations on a 4-rank
simulated cluster and prints the peak-memory breakdowns, reproducing the
workflow behind the paper's Fig. 6 and Table II on any model you pick.

Run:  python examples/memory_optimization.py
"""

from repro.data import Normalizer, generate_corpus
from repro.distributed import DataParallelEngine, SimCluster
from repro.memory import profile_training_step, to_paper_breakdown
from repro.models import HydraModel, ModelConfig, count_parameters
from repro.optim import Adam


def show(title: str, breakdown: dict[str, float], peak_bytes: int) -> None:
    print(f"\n{title}  (peak {peak_bytes / 1e6:.1f} MB)")
    for category, share in breakdown.items():
        bar = "#" * int(share / 2)
        print(f"  {category:18s} {share:5.1f}% {bar}")


def main() -> None:
    corpus = generate_corpus(120, seed=30)
    normalizer = Normalizer.fit(corpus.graphs)
    molecules = [g for g in corpus.graphs if g.source in ("ani1x", "qm7x")]
    config = ModelConfig(hidden_dim=256, num_layers=3)
    print(f"model: {count_parameters(config):,} parameters; "
          f"workload: {len(molecules[:32])} molecules across 4 ranks")

    # (1) vanilla: single-rank profile, replicated Adam.
    model = HydraModel(config, seed=30)
    profile = profile_training_step(
        model, molecules[:8], Adam(model.parameters(), lr=1e-3), normalizer
    )
    show("vanilla (per GPU)", profile.paper_breakdown(), profile.peak_bytes)

    # (2) + activation checkpointing.
    model_ckpt = HydraModel(config.with_checkpointing(True), seed=30)
    profile_ckpt = profile_training_step(
        model_ckpt, molecules[:8], Adam(model_ckpt.parameters(), lr=1e-3), normalizer
    )
    show("+ activation checkpointing", profile_ckpt.paper_breakdown(), profile_ckpt.peak_bytes)

    # (3) + ZeRO-1 on a 4-rank cluster (per-rank breakdown of rank 0).
    cluster = SimCluster(4)
    engine = DataParallelEngine(
        cluster, config.with_checkpointing(True), normalizer, optimizer="zero", seed=30
    )
    engine.train_step(molecules[:32])  # warm-up allocates sharded state
    for rank in cluster.ranks:
        rank.tracker.reset_peak()
    engine.train_step(molecules[:32])
    peak = cluster.ranks[0].tracker.peak()
    show("+ ZeRO-1 (4 ranks, rank 0)", to_paper_breakdown(peak), peak.total)

    saved = 100.0 * (1.0 - peak.total / profile.peak_bytes)
    print(f"\ntotal per-rank peak saved vs vanilla: {saved:.0f}% "
          f"(paper: 73% at its scale)")
    print(f"modeled extra step time from the ZeRO all-gather on NVLink-3: "
          f"{cluster.ranks[0].comm_time * 1e3:.2f} ms (simulated clock)")


if __name__ == "__main__":
    main()
