"""Molecular force prediction and a short model-driven relaxation.

Forces are the node-level task of the paper's multi-task setup.  This
example trains on molecule-only data (the ANI1x / QM7-X analogues),
verifies force equivariance numerically, and then uses the model as a
drop-in surrogate for gradient descent on atomic positions — the
geometry-relaxation workflow GNN potentials exist for.

Run:  python examples/molecular_forces.py
"""

import numpy as np
from scipy.spatial.transform import Rotation

from repro.data import DEFAULT_POTENTIAL, Normalizer
from repro.data.sources import ANI1xSource, QM7XSource
from repro.graph.atoms import AtomGraph
from repro.graph.batch import collate
from repro.graph.radius import build_edges
from repro.models import HydraModel, ModelConfig
from repro.tensor import no_grad
from repro.train import Trainer, TrainerConfig


def predicted_forces(model, graph: AtomGraph, normalizer: Normalizer) -> np.ndarray:
    with no_grad():
        out = model(collate([graph]))["forces"].numpy()
    return normalizer.denormalize_forces(out)


def main() -> None:
    ani1x, qm7x = ANI1xSource(), QM7XSource()
    train_graphs = ani1x.sample(150, seed=20) + qm7x.sample(150, seed=21)
    test_graphs = ani1x.sample(30, seed=22)
    normalizer = Normalizer.fit(train_graphs)

    model = HydraModel(ModelConfig(hidden_dim=48, num_layers=3), seed=20)
    trainer = Trainer(
        model,
        normalizer,
        TrainerConfig(epochs=6, batch_size=16, learning_rate=1e-3, grad_clip=1.0),
    )
    history = trainer.fit(train_graphs, test_graphs)
    print(f"trained; force MAE (normalized) {history.final_metrics['force_mae']:.4f}")

    # --- equivariance check on a held-out molecule -----------------------
    graph = test_graphs[0]
    rotation = Rotation.from_euler("xyz", [0.5, -0.3, 1.0]).as_matrix()
    rotated = AtomGraph(
        graph.atomic_numbers,
        graph.positions @ rotation.T,
        graph.edge_index,
        graph.edge_shift @ rotation.T,
    )
    f_base = predicted_forces(model, graph, normalizer)
    f_rotated = predicted_forces(model, rotated, normalizer)
    error = np.abs(f_base @ rotation.T - f_rotated).max()
    print(f"equivariance: max |R f(x) - f(R x)| = {error:.2e} (exact to float32)")

    # --- relaxation: walk downhill along predicted forces ----------------
    positions = graph.positions + np.random.default_rng(0).normal(0.12, size=graph.positions.shape)
    source_cutoff = ani1x.cutoff

    def true_energy(pos: np.ndarray) -> float:
        edges, shifts = build_edges(pos, source_cutoff)
        probe = AtomGraph(graph.atomic_numbers, pos, edges, shifts)
        energy, _ = DEFAULT_POTENTIAL.energy_and_forces(probe)
        return energy

    print("\nmodel-driven relaxation (true energy should decrease):")
    print(f"  step  0: E = {true_energy(positions):9.4f}")
    step_size = 2e-3
    for step in range(1, 16):
        edges, shifts = build_edges(positions, source_cutoff)
        current = AtomGraph(graph.atomic_numbers, positions, edges, shifts)
        forces = predicted_forces(model, current, normalizer)
        # Cap the displacement for stability, as real relaxers do.
        forces = np.clip(forces, -25.0, 25.0)
        positions = positions + step_size * forces
        if step % 5 == 0:
            print(f"  step {step:2d}: E = {true_energy(positions):9.4f}")


if __name__ == "__main__":
    main()
