"""Catalyst screening: rank candidate slab+adsorbate systems by energy.

The paper motivates scaled GNNs with materials discovery: screening vast
composition spaces orders of magnitude faster than first-principles
calculations (Sec. VI).  This example does exactly that workflow on the
OC20-analogue substrate:

1. train a model on mixed catalyst data,
2. generate a screening library of metal-slab + adsorbate candidates,
3. predict per-atom energies for the whole library in a few batched
   forward passes and rank the candidates,
4. compare the ranking against the ground-truth potential (which a real
   screening campaign would not have — here it grades the model).

Run:  python examples/catalyst_screening.py
"""

import numpy as np

from repro.data import Normalizer, generate_corpus
from repro.data.sources import OC20Source
from repro.graph.batch import batch_iterator
from repro.models import HydraModel, ModelConfig
from repro.tensor import no_grad
from repro.train import Trainer, TrainerConfig


def predict_energies(model, graphs, normalizer, batch_size: int = 16) -> np.ndarray:
    """Normalized per-atom energy prediction for each graph."""
    predictions = []
    with no_grad():
        for batch in batch_iterator(graphs, batch_size):
            predictions.append(model(batch)["energy"].numpy().ravel())
    return np.concatenate(predictions)


def main() -> None:
    # Train on the aggregated corpus (catalyst-heavy by construction).
    corpus = generate_corpus(total_graphs=260, seed=10)
    train_corpus, test_graphs = corpus.train_test_split(0.15, seed=11)
    normalizer = Normalizer.fit(corpus.graphs)
    model = HydraModel(ModelConfig(hidden_dim=32, num_layers=3), seed=10)
    trainer = Trainer(
        model,
        normalizer,
        TrainerConfig(epochs=5, batch_size=16, learning_rate=1e-3, grad_clip=1.0),
    )
    history = trainer.fit(train_corpus.graphs, test_graphs)
    print(f"trained; held-out loss {history.final_test_loss:.4f}")

    # Screening library: 60 fresh catalyst candidates.
    library = OC20Source().sample(60, seed=99)
    predicted = predict_energies(model, library, normalizer)

    # Ground truth (normalized the same way) for grading the screen.
    actual = np.array(
        [(g.energy / g.n_atoms - normalizer.energy_mean_per_atom) / normalizer.energy_std_per_atom
         for g in library]
    )

    order = np.argsort(predicted)
    print("\ntop-5 most stable candidates by predicted per-atom energy:")
    for rank, index in enumerate(order[:5], start=1):
        graph = library[index]
        metals = sorted({int(z) for z in graph.atomic_numbers if z > 10})
        print(
            f"  #{rank}: candidate {index:2d}  Z={metals}  "
            f"predicted {predicted[index]:+.3f}  actual {actual[index]:+.3f}"
        )

    spearman = np.corrcoef(np.argsort(np.argsort(predicted)), np.argsort(np.argsort(actual)))[0, 1]
    top10 = set(order[:10]) & set(np.argsort(actual)[:10])
    print(f"\nranking quality: Spearman rho = {spearman:.3f}; "
          f"{len(top10)}/10 of the true top-10 recovered")


if __name__ == "__main__":
    main()
