"""Server-side molecular dynamics walkthrough: NVT over the wire.

Covers the `/v1/md` workload end to end:

1. register a model and start a real `ApiServer` (the same server
   `repro serve --http PORT` runs),
2. stream a seeded Langevin NVT run with `Client.md(...)` — frames
   arrive as the server integrates, thinned by `frame_interval` — and
   print the temperature/energy trace,
3. re-run the same seed chunked (`chunk_steps=`) and verify the
   trajectory is bit-identical: thermostat noise is keyed by absolute
   step index, so resumable runs cost nothing in reproducibility,
4. read the server's `md` telemetry section (sessions, steps/s, skin
   neighbor-list reuse rate).

Run:  python examples/md_client.py
"""

import numpy as np

from repro.api import ApiServer, Client, StructurePayload
from repro.models import HydraModel, ModelConfig
from repro.serving import ModelRegistry


def make_structure(n: int = 12, seed: int = 0) -> StructurePayload:
    """A compact synthetic cluster (light elements, ~4 Å box)."""
    rng = np.random.default_rng(seed)
    return StructurePayload(
        atomic_numbers=rng.integers(1, 9, size=n).astype(np.int64),
        positions=rng.uniform(0.0, 4.0, size=(n, 3)),
    )


def main() -> None:
    registry = ModelRegistry()
    registry.register_model("demo", HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0))
    structure = make_structure()

    with ApiServer(registry, port=0, workers=2) as server:
        print(f"server listening on {server.url}")
        client = Client.http(server.url)

        # 2. One streamed NVT run: 60 velocity-Verlet steps at 0.5 fs
        # under a seeded Langevin thermostat, a frame every 10th step.
        print("\nLangevin NVT trace (streamed frames):")
        print(f"  {'step':>4s}  {'E_pot':>9s}  {'E_kin':>7s}  {'T (K)':>7s}")
        run = client.md(
            structure,
            n_steps=60,
            timestep_fs=0.5,
            thermostat="langevin",
            temperature_k=300.0,
            friction=0.05,
            seed=42,
            frame_interval=10,
        )
        frames = []
        for frame in run:
            frames.append(frame)
            print(
                f"  {frame.step:4d}  {frame.energy:+9.4f}  "
                f"{frame.kinetic_energy:7.4f}  {frame.temperature_k:7.1f}"
            )
        summary = run.result
        print(
            f"ran {summary.steps} steps ({summary.frames} frames), "
            f"thermostat={summary.thermostat}, "
            f"skin reuse {summary.neighbor_reuses}/"
            f"{summary.neighbor_reuses + summary.neighbor_rebuilds} updates"
        )

        # 3. The same run driven as resumable chunks: each segment
        # re-submits the last frame's positions + velocities, and the
        # step-indexed thermostat noise makes the trajectory identical.
        chunked = client.md(
            structure,
            n_steps=60,
            timestep_fs=0.5,
            thermostat="langevin",
            temperature_k=300.0,
            friction=0.05,
            seed=42,
            frame_interval=10,
            chunk_steps=17,
        )
        chunked_frames = chunked.frames()
        identical = len(frames) == len(chunked_frames) and all(
            a.step == b.step
            and np.array_equal(a.positions, b.positions)
            and np.array_equal(a.velocities, b.velocities)
            for a, b in zip(frames, chunked_frames)
        )
        print(f"chunked (chunk_steps=17) == streamed, bit-exact: {identical}")

        # 4. The server kept count.
        md_stats = client.stats().models["demo"]["md"]
        print(
            f"\nmd telemetry: {md_stats['sessions']} sessions, "
            f"{md_stats['steps']} steps at {md_stats['steps_per_s']:.0f} steps/s, "
            f"skin reuse rate {md_stats['neighbor_reuse_rate']:.0%}, "
            f"thermostats {md_stats['thermostats']}"
        )


if __name__ == "__main__":
    main()
