"""Run a miniature version of the paper's scaling study end to end.

This is the paper's Sec. IV compressed into one script: train a
(model-size x dataset-size) grid for real, fit the joint scaling law,
extract the exponents, and project the paper-scale Fig. 3 / Fig. 4
series from the calibrated surface.

Run:  python examples/scaling_study.py        (~2-3 minutes)
      python examples/scaling_study.py --fast (smaller grid, ~40 s)
"""

import sys

from repro.experiments.report import ascii_line_chart, format_count
from repro.experiments.scaling_study import ScalingStudy
from repro.scaling import LadderSpec


def main(fast: bool = False) -> None:
    if fast:
        spec = LadderSpec(
            corpus_graphs=160,
            widths=(4, 8, 16),
            dataset_fractions=(0.25, 1.0),
            epochs=3,
        )
    else:
        spec = LadderSpec()

    print("running the measured training ladder "
          f"({len(spec.widths)} widths x {len(spec.dataset_fractions)} fractions, "
          f"{spec.epochs} epochs each)...")
    study = ScalingStudy.run(spec, verbose=True)

    print(f"\nmeasured joint fit: {study.ladder.fit}")
    print(f"surface anchored to the paper's Figs. 3-4 "
          f"(anchor RMS {study.anchor_rms:.4f})")

    # Fig. 3 slice: loss vs parameters at the smallest and largest corpus.
    fig3 = study.fig3_series()
    chart = ascii_line_chart(
        {"0.1 TB": fig3[0.1], "1.2 TB": fig3[1.2]},
        log_x=True,
        height=14,
        title="projected: test loss vs parameters (Fig. 3 end slices)",
        x_label="parameters",
        y_label="loss",
    )
    print("\n" + chart)

    # Headline numbers.
    surface = study.surface
    print("\npaper-scale projections:")
    for params in (1e5, 1e7, 2e9):
        small = float(surface.loss(params, 0.1))
        large = float(surface.loss(params, 1.2))
        print(f"  {format_count(params):>8} params: 0.1 TB -> {small:.4f},  1.2 TB -> {large:.4f}")
    print(f"  0.1 TB distribution-mismatch bump: +{surface.mismatch_bump(0.1):.4f}")
    print(f"  claims: model scaling helps = {study.claim_model_scaling_helps()}, "
          f"data scaling helps = {study.claim_data_scaling_helps()}, "
          f"diminishing returns = {study.claim_diminishing_returns()}, "
          f"0.1 TB bump = {study.claim_mismatch_bump()}")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv)
