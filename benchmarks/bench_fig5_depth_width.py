"""FIG5 bench — depth vs width at 0.4 TB + over-smoothing diagnostic.

Trains a real (depth x width) grid, measures the MAD over-smoothing
signature, and regenerates the projected paper-scale heat map.
"""

from benchmarks._shared import shared_depth_width_grid, shared_scaling_study, write_result
from repro.experiments.depth_width import run_fig5


def bench_fig5_depth_width(benchmark):
    measured = benchmark.pedantic(shared_depth_width_grid, rounds=1, iterations=1)
    study = shared_scaling_study()
    result = run_fig5(study.surface, measured=measured)
    write_result("fig5", result.to_text())
    # The paper's Sec. IV-C claims on the projected grid.
    assert result.claim_width_helps()
    assert result.claim_depth_hurts()
    # The measured mechanism: message passing contracts node features.
    assert result.claim_oversmoothing_measured()
