"""TAB1 bench — regenerate Table I (per-source corpus statistics)."""

from benchmarks._shared import write_result
from repro.experiments.table1_sources import run_table1


def bench_table1_sources(benchmark):
    result = benchmark.pedantic(
        lambda: run_table1(samples_per_source=32), rounds=1, iterations=1
    )
    write_result("table1", result.to_text())
    # Shape requirement: scaled node counts within 2x of every paper row.
    assert result.max_node_ratio_error() < 1.0
    for row in result.rows:
        assert 0.3 < row.scaled_edges / row.paper_edges < 3.0
