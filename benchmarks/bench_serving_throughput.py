"""Serving benchmarks: dynamic batching vs one-structure-at-a-time.

The serving subsystem's reason to exist is throughput: collating K
requests into one disjoint-union batch amortizes per-call dispatch
overhead across K structures.  Two comparisons guard it:

- ``bench_dynamic_batching_speedup`` serves the same 64-structure
  molecular workload through the service twice — batch budget 64 vs
  budget 1 — and asserts the batched path clears
  ``SERVING_SPEEDUP_FLOOR`` (default 3x; CI relaxes it for noisy
  shared runners).
- ``bench_cached_serving_session`` replays a repeat-heavy request
  stream and records the cache hit-rate and p50/p95 request latency.

Both write their numbers into ``benchmarks/results/BENCH_serving.json``
so CI can upload one artifact and future PRs have a serving trajectory
to regress against.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from _shared import RESULTS_DIR, write_result
from repro.data import generate_corpus
from repro.models import HydraModel, ModelConfig
from repro.serving import PredictionService, ServiceConfig

#: Required batched-over-single speedup.  The 3x acceptance bar assumes a
#: quiet machine; CI overrides via the env var.
_SPEEDUP_FLOOR = float(os.environ.get("SERVING_SPEEDUP_FLOOR", "3.0"))

#: The tentpole batch budget the speedup is measured at.
_BATCH_BUDGET = 64

_JSON_PATH = RESULTS_DIR / "BENCH_serving.json"

_workload_cache = None


def _workload() -> tuple[HydraModel, list]:
    """A width-32 model and 64 small molecular structures.

    Small molecules are the latency-sensitive serving case (screening
    traffic); they are also where dynamic batching pays most, because
    per-call dispatch overhead rivals per-structure compute.
    """
    global _workload_cache
    if _workload_cache is None:
        corpus = generate_corpus(400, seed=11)
        graphs = [g for g in corpus.graphs if g.source in ("ani1x", "qm7x")][:_BATCH_BUDGET]
        assert len(graphs) == _BATCH_BUDGET
        model = HydraModel(ModelConfig(hidden_dim=32, num_layers=3), seed=0)
        _workload_cache = (model, graphs)
    return _workload_cache


def _merge_json(update: dict) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {}
    if _JSON_PATH.exists():
        payload = json.loads(_JSON_PATH.read_text())
    payload.update(update)
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return _JSON_PATH


def _best_of_interleaved(fn_a, fn_b, rounds: int = 3) -> tuple[float, float]:
    """Best-of timings with a/b alternating each round (load-spike fair)."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def bench_dynamic_batching_speedup(benchmark):
    """Batched serving must be ≥3x single-structure predict throughput."""
    model, graphs = _workload()

    def service(max_graphs: int) -> PredictionService:
        # Caching off: this measures batching, not memoization.
        return PredictionService(
            model,
            ServiceConfig(max_graphs=max_graphs, max_atoms=10**9, cache_capacity=0),
        )

    single, batched = service(1), service(_BATCH_BUDGET)

    def run_single():
        single.predict_many(graphs)

    def run_batched():
        batched.predict_many(graphs)

    run_single()  # warm-up: pools, kernel caches
    run_batched()
    t_single, t_batched = _best_of_interleaved(run_single, run_batched)
    speedup = t_single / t_batched
    sps_single = len(graphs) / t_single
    sps_batched = len(graphs) / t_batched
    text = (
        "serving_dynamic_batching_speedup\n"
        f"single-structure : {t_single * 1e3:8.1f} ms ({sps_single:8.1f} structures/s)\n"
        f"batched (≤{_BATCH_BUDGET})     : {t_batched * 1e3:8.1f} ms ({sps_batched:8.1f} structures/s)\n"
        f"speedup          : {speedup:8.2f}x (required >= {_SPEEDUP_FLOOR}x)"
    )
    write_result("serving_throughput", text)
    _merge_json(
        {
            "batch_budget": _BATCH_BUDGET,
            "speedup": round(speedup, 3),
            "speedup_floor": _SPEEDUP_FLOOR,
            "single_structures_per_s": round(sps_single, 1),
            "batched_structures_per_s": round(sps_batched, 1),
        }
    )
    assert speedup >= _SPEEDUP_FLOOR, f"dynamic batching only {speedup:.2f}x faster"
    benchmark(run_batched)


def bench_cached_serving_session(benchmark):
    """Repeat-heavy traffic: record hit-rate and p50/p95 latency."""
    model, graphs = _workload()
    service = PredictionService(
        model, ServiceConfig(max_graphs=_BATCH_BUDGET, max_atoms=10**9)
    )
    # Three passes over the same structures: pass one misses, passes two
    # and three hit — a 2/3 steady-state hit rate, like screening loops
    # that re-score a candidate set.
    for _ in range(3):
        service.predict_many(graphs)
    summary = service.summary()
    hit_rate = summary.cache_hit_rate
    text = (
        "serving_cached_session\n"
        f"requests        : {summary.requests}\n"
        f"cache hit rate  : {hit_rate:8.1%}\n"
        f"p50 latency     : {summary.p50_latency_s * 1e3:8.2f} ms\n"
        f"p95 latency     : {summary.p95_latency_s * 1e3:8.2f} ms\n"
        f"throughput      : {summary.requests_per_s:8.1f} structures/s"
    )
    write_result("serving_cached_session", text)
    _merge_json(
        {
            "session_requests": summary.requests,
            "cache_hit_rate": round(hit_rate, 4),
            "p50_latency_ms": round(summary.p50_latency_s * 1e3, 3),
            "p95_latency_ms": round(summary.p95_latency_s * 1e3, 3),
            "requests_per_s": round(summary.requests_per_s, 1),
        }
    )
    expected = 2 / 3
    assert abs(hit_rate - expected) < 1e-6, f"hit rate {hit_rate} != {expected}"
    assert summary.p95_latency_s >= summary.p50_latency_s

    def replay():
        service.predict_many(graphs)

    benchmark(replay)


def bench_threaded_dispatch_smoke(benchmark):
    """Multi-worker served mode: correct results under concurrency."""
    model, graphs = _workload()
    inline = PredictionService(
        model, ServiceConfig(cache_capacity=0, max_atoms=10**9)
    ).predict_many(graphs)
    expected = np.array([r.energy for r in inline])

    def session() -> float:
        service = PredictionService(
            model, ServiceConfig(flush_interval_s=0.002, max_atoms=10**9)
        )
        with service.start(workers=2):
            pending = [service.submit(g) for g in graphs]
            results = [p.wait(30.0) for p in pending]
        return float(np.abs(np.array([r.energy for r in results]) - expected).max())

    error = session()
    assert error < 1e-6, f"threaded serving diverged from inline by {error}"
    value = benchmark(session)
    assert np.isfinite(value)
