"""Engine micro-benchmarks: training-step throughput of the substrate.

These are conventional pytest-benchmark timings (multiple rounds) of the
numpy engine itself — useful for tracking substrate regressions, and the
denominators behind the "measured compute" column of Table II.
"""

import numpy as np

from repro.data import Normalizer, generate_corpus
from repro.graph.batch import collate
from repro.models import HydraModel, ModelConfig
from repro.optim import Adam

_corpus = None


def _workload(width: int, checkpoint: bool = False):
    global _corpus
    if _corpus is None:
        _corpus = generate_corpus(48, seed=75)
    normalizer = Normalizer.fit(_corpus.graphs)
    graphs = [g for g in _corpus.graphs if g.source in ("ani1x", "qm7x")][:16]
    batch = collate(graphs)
    config = ModelConfig(hidden_dim=width, num_layers=3, checkpoint_activations=checkpoint)
    model = HydraModel(config, seed=0)
    optimizer = Adam(model.parameters(), lr=1e-3)
    energy = normalizer.normalized_energy(batch)
    forces = normalizer.normalized_forces(batch)

    def step() -> float:
        model.zero_grad()
        loss = model.loss(model(batch), energy, forces)
        loss.backward()
        optimizer.step()
        return loss.item()

    return step


def bench_train_step_width64(benchmark):
    step = _workload(64)
    step()  # warm-up (allocates Adam state)
    loss = benchmark(step)
    assert np.isfinite(loss)


def bench_train_step_width128(benchmark):
    step = _workload(128)
    step()
    loss = benchmark(step)
    assert np.isfinite(loss)


def bench_train_step_checkpointed_width64(benchmark):
    step = _workload(64, checkpoint=True)
    step()
    loss = benchmark(step)
    assert np.isfinite(loss)


def bench_forward_only_width128(benchmark):
    global _corpus
    if _corpus is None:
        _corpus = generate_corpus(48, seed=75)
    from repro.tensor import no_grad

    graphs = [g for g in _corpus.graphs if g.source in ("ani1x", "qm7x")][:16]
    batch = collate(graphs)
    model = HydraModel(ModelConfig(hidden_dim=128, num_layers=3), seed=0)

    def forward() -> float:
        with no_grad():
            return float(model(batch)["energy"].numpy().sum())

    value = benchmark(forward)
    assert np.isfinite(value)
