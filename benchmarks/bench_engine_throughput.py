"""Engine micro-benchmarks: training-step throughput of the substrate.

These are conventional pytest-benchmark timings (multiple rounds) of the
numpy engine itself — useful for tracking substrate regressions, and the
denominators behind the "measured compute" column of Table II.

Two comparisons guard the kernel-dispatch layer:

- ``bench_fused_vs_unfused_width128`` asserts the fused message-passing
  kernels + buffer pool deliver ≥1.5x the throughput of the composed
  primitive-op path at width 128 (and that both paths agree numerically);
- ``bench_inference_vs_train_width128`` asserts the ``no_grad`` fast path
  constructs zero autograd ``Function`` nodes.
"""

import os
import time

import numpy as np

from _shared import write_result
from repro.data import Normalizer, generate_corpus
from repro.graph.batch import collate
from repro.models import HydraModel, ModelConfig
from repro.optim import Adam
from repro.tensor import function_nodes_created, kernels, no_grad
from repro.tensor.allocator import BufferPool, use_pool

_corpus = None


def _graphs():
    global _corpus
    if _corpus is None:
        _corpus = generate_corpus(48, seed=75)
    return _corpus


def _workload(width: int, checkpoint: bool = False, fused: bool = True, pool: bool = True):
    corpus = _graphs()
    normalizer = Normalizer.fit(corpus.graphs)
    graphs = [g for g in corpus.graphs if g.source in ("ani1x", "qm7x")][:16]
    batch = collate(graphs)
    config = ModelConfig(hidden_dim=width, num_layers=3, checkpoint_activations=checkpoint)
    model = HydraModel(config, seed=0)
    optimizer = Adam(model.parameters(), lr=1e-3)
    energy = normalizer.normalized_energy(batch)
    forces = normalizer.normalized_forces(batch)
    buffer_pool = BufferPool() if pool else None

    def step() -> float:
        model.zero_grad()
        loss = model.loss(model(batch), energy, forces)
        loss.backward()
        optimizer.step()
        return loss.item()

    def run() -> float:
        if buffer_pool is not None:
            with kernels.fusion(fused), use_pool(buffer_pool):
                return step()
        with kernels.fusion(fused):
            return step()

    return run


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _best_of_interleaved(fn_a, fn_b, rounds: int = 3) -> tuple[float, float]:
    """Best-of timings with a/b alternating each round.

    Interleaving means a sustained load spike on a shared machine hits
    both sides instead of biasing whichever ran second.
    """
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def bench_train_step_width64(benchmark):
    step = _workload(64)
    step()  # warm-up (allocates Adam state)
    loss = benchmark(step)
    assert np.isfinite(loss)


def bench_train_step_width128(benchmark):
    step = _workload(128)
    step()
    loss = benchmark(step)
    assert np.isfinite(loss)


def bench_train_step_width128_unfused(benchmark):
    """The composed primitive-op baseline the fused kernels replace."""
    step = _workload(128, fused=False, pool=False)
    step()
    loss = benchmark(step)
    assert np.isfinite(loss)


def bench_train_step_checkpointed_width64(benchmark):
    step = _workload(64, checkpoint=True)
    step()
    loss = benchmark(step)
    assert np.isfinite(loss)


#: Required fused-over-unfused speedup.  The 1.5x acceptance bar assumes a
#: quiet machine; noisy shared CI runners can override via the env var
#: (the CI workflow smoke uses a lower floor so load spikes on a neighbor
#: tenant do not fail unrelated PRs).
_SPEEDUP_FLOOR = float(os.environ.get("ENGINE_SPEEDUP_FLOOR", "1.5"))


def bench_fused_vs_unfused_width128(benchmark):
    """Fused dispatch path must be ≥1.5x the unfused train step (width 128)."""
    fused = _workload(128, fused=True)
    unfused = _workload(128, fused=False, pool=False)
    fused_loss = fused()  # warm-up: Adam state, pool population, caches
    unfused_loss = unfused()
    assert abs(fused_loss - unfused_loss) < 1e-5, "fused and unfused steps diverged"
    t_unfused, t_fused = _best_of_interleaved(unfused, fused)
    speedup = t_unfused / t_fused
    text = (
        "engine_fused_vs_unfused_width128\n"
        f"unfused train step : {t_unfused * 1e3:8.1f} ms\n"
        f"fused train step   : {t_fused * 1e3:8.1f} ms\n"
        f"speedup            : {speedup:8.2f}x (required >= {_SPEEDUP_FLOOR}x)"
    )
    write_result("engine_fused_vs_unfused", text)
    assert speedup >= _SPEEDUP_FLOOR, f"fused path only {speedup:.2f}x faster"
    loss = benchmark(fused)
    assert np.isfinite(loss)


def bench_inference_vs_train_width128(benchmark):
    """The no_grad fast path: zero Function nodes, measured vs train step."""
    corpus = _graphs()
    graphs = [g for g in corpus.graphs if g.source in ("ani1x", "qm7x")][:16]
    batch = collate(graphs)
    model = HydraModel(ModelConfig(hidden_dim=128, num_layers=3), seed=0)
    pool = BufferPool()

    def forward() -> float:
        with use_pool(pool):
            return float(model.predict(batch)["energy"].numpy().sum())

    forward()  # warm-up
    before = function_nodes_created()
    forward()
    assert function_nodes_created() == before, "inference fast path built autograd nodes"

    train = _workload(128)
    train()
    t_train = _best_of(train)
    t_infer = _best_of(forward)
    text = (
        "engine_train_vs_inference_width128\n"
        f"train step (fwd+bwd+opt) : {t_train * 1e3:8.1f} ms\n"
        f"inference forward        : {t_infer * 1e3:8.1f} ms\n"
        f"ratio                    : {t_train / t_infer:8.2f}x"
    )
    write_result("engine_train_vs_inference", text)
    value = benchmark(forward)
    assert np.isfinite(value)


def bench_forward_only_width128(benchmark):
    corpus = _graphs()
    graphs = [g for g in corpus.graphs if g.source in ("ani1x", "qm7x")][:16]
    batch = collate(graphs)
    model = HydraModel(ModelConfig(hidden_dim=128, num_layers=3), seed=0)

    def forward() -> float:
        with no_grad():
            return float(model(batch)["energy"].numpy().sum())

    value = benchmark(forward)
    assert np.isfinite(value)
