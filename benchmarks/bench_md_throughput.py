"""Served MD throughput: skin-list reuse vs per-step neighbor rebuilds.

MD is the trajectory workload at its purest — hundreds of force
evaluations over the same atoms with sub-angstrom displacements per
step.  The serving stack reuses the Verlet :class:`SkinNeighborList`
candidates across steps; this bench pins what that is worth on the real
integrator:

- **Throughput.**  ``run_md`` with the production skin must beat the
  same run with a degenerate (effectively zero) skin — which forces a
  candidate rebuild every step — by at least ``MD_SPEEDUP_FLOOR``
  (default 1.3x locally; CI relaxes it for noisy shared runners).
- **Bit-identity.**  Swapping the skin changes *when* candidates are
  rebuilt, never the exact-cutoff edges — so a seeded NVT trajectory
  must be bit-identical across both skins, and across repeated runs.
  A fast wrong trajectory is a regression, not a win.

Numbers merge into ``benchmarks/results/BENCH_md.json`` (uploaded as a
CI artifact next to the other bench trajectories).
"""

import json
import os
import time

import numpy as np

from _shared import RESULTS_DIR, write_result
from repro.graph.atoms import AtomGraph
from repro.models import HydraModel, ModelConfig
from repro.serving import MDSettings, PredictionService, ServiceConfig, run_md

_FLOOR = float(os.environ.get("MD_SPEEDUP_FLOOR", "1.3"))
_JSON_PATH = RESULTS_DIR / "BENCH_md.json"

_ATOMS = 80
_CUTOFF = 4.5
_SKIN = 0.4
#: Degenerate skin: any displacement exceeds it, so every step rebuilds
#: candidates from scratch — the per-step-rebuild baseline.  (Settings
#: require skin > 0.)
_TINY_SKIN = 1e-9
_STEPS = 120
_SEED = 7

#: Bulk-like triclinic periodic cell (matches the relax bench): the
#: KD-tree over replicated images is the real per-rebuild cost that
#: skin reuse amortizes.  Without PBC the rebuild is too cheap to see
#: next to the model forward.
_CELL = np.array(
    [
        [9.4, 0.0, 0.0],
        [1.7, 8.9, 0.0],
        [-0.9, 1.1, 9.8],
    ]
)
_PBC = (True, True, True)


def _merge_json(update: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {}
    if _JSON_PATH.exists():
        payload = json.loads(_JSON_PATH.read_text())
    payload.update(update)
    payload["floor"] = _FLOOR
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _make_graph() -> AtomGraph:
    rng = np.random.default_rng(0)
    return AtomGraph(
        atomic_numbers=rng.integers(1, 9, size=_ATOMS),
        positions=rng.uniform(0.0, 9.0, size=(_ATOMS, 3)),
        edge_index=np.zeros((2, 0), dtype=np.int64),
        edge_shift=np.zeros((0, 3)),
        cell=_CELL,
        pbc=_PBC,
        source="bench",
    )


def _settings(skin: float) -> MDSettings:
    return MDSettings(
        n_steps=_STEPS,
        timestep_fs=0.5,
        thermostat="langevin",
        temperature_k=300.0,
        friction=0.05,
        seed=_SEED,
        frame_interval=_STEPS,  # initial + final frame only; timing, not I/O
        skin=skin,
        cutoff=_CUTOFF,
    )


def bench_md_throughput(benchmark):
    """Seeded NVT steps/s with the production skin vs per-step rebuilds."""
    graph = _make_graph()
    model = HydraModel(ModelConfig(hidden_dim=16, num_layers=2), seed=0)
    service = PredictionService(model, ServiceConfig(plan=True))
    predict = service.predict

    def sweep(skin: float) -> list:
        return [payload for kind, payload in run_md(predict, graph, _settings(skin))]

    # Bit-identity sweep inside the bench: the skin is a scheduling knob,
    # not a physics knob.  Same trajectory with reuse, without reuse, and
    # across repeated runs.
    skinned = sweep(_SKIN)
    rebuilt = sweep(_TINY_SKIN)
    again = sweep(_SKIN)
    for reference, candidate in ((skinned, rebuilt), (skinned, again)):
        for a, b in zip(reference[:-1], candidate[:-1]):
            assert a.step == b.step
            assert np.array_equal(a.positions, b.positions)
            assert np.array_equal(a.velocities, b.velocities)
            assert a.energy == b.energy
    result = skinned[-1]
    baseline_result = rebuilt[-1]
    reuse_rate = result.neighbor_reuses / (
        result.neighbor_rebuilds + result.neighbor_reuses
    )
    assert baseline_result.neighbor_reuses == 0  # tiny skin defeats reuse
    assert reuse_rate > 0.5

    def best_of(fn, rounds: int = 3) -> float:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best / _STEPS

    sweep(_SKIN)  # warm model caches before timing
    skinned_s = best_of(lambda: sweep(_SKIN))
    rebuilt_s = best_of(lambda: sweep(_TINY_SKIN))
    speedup = rebuilt_s / skinned_s

    text = (
        "md_throughput "
        f"(atoms={_ATOMS}, steps={_STEPS}, cutoff={_CUTOFF}, skin={_SKIN}, "
        f"triclinic PBC, langevin @300K)\n"
        f"per-step rebuild : {1.0 / rebuilt_s:8.1f} steps/s\n"
        f"skin reuse       : {1.0 / skinned_s:8.1f} steps/s\n"
        f"speedup          : {speedup:8.2f}x (floor {_FLOOR}x)\n"
        f"skin list        : {result.neighbor_rebuilds} rebuilds, "
        f"{result.neighbor_reuses} reuses ({reuse_rate:.0%} reuse)"
    )
    write_result("md_throughput", text)
    _merge_json(
        {
            "steps_per_s_rebuild": round(1.0 / rebuilt_s, 1),
            "steps_per_s_skin": round(1.0 / skinned_s, 1),
            "speedup": round(speedup, 3),
            "atoms": _ATOMS,
            "steps": _STEPS,
            "thermostat": "langevin",
            "neighbor_rebuilds": result.neighbor_rebuilds,
            "neighbor_reuses": result.neighbor_reuses,
            "reuse_rate": round(reuse_rate, 4),
            "bit_identical_across_skins": True,
        }
    )
    assert speedup >= _FLOOR, (
        f"skin reuse only {speedup:.2f}x over per-step rebuilds "
        f"(required >= {_FLOOR}x)"
    )
    benchmark(lambda: sweep(_SKIN))
