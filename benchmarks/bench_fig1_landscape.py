"""FIG1 bench — regenerate the scale landscape incl. the foundation model."""

from benchmarks._shared import write_result
from repro.experiments.fig1_landscape import run_fig1


def bench_fig1_landscape(benchmark):
    result = benchmark.pedantic(run_fig1, rounds=1, iterations=1)
    write_result("fig1", result.to_text())
    # The foundation model dominates both axes, as in the paper's Fig. 1.
    label, params, gigabytes = result.ours()
    assert params >= 1.9e9
    assert gigabytes >= 1000.0
