"""ABL2 bench — ZeRO scalability: rank count vs per-rank memory and time.

Sweeps the simulated cluster size: per-rank optimizer-state memory must
shrink ~1/R while the modeled all-gather cost grows, quantifying the
memory/communication trade the paper's Sec. V-C describes.
"""

from benchmarks._shared import write_result
from repro.data import Normalizer, generate_corpus
from repro.distributed import DataParallelEngine, SimCluster
from repro.experiments.report import ascii_table
from repro.models import ModelConfig


def _run_sweep():
    corpus = generate_corpus(80, seed=72)
    normalizer = Normalizer.fit(corpus.graphs)
    molecules = [g for g in corpus.graphs if g.source in ("ani1x", "qm7x")]
    config = ModelConfig(hidden_dim=128, num_layers=3, checkpoint_activations=True)
    results = {}
    for ranks in (1, 2, 4, 8):
        graphs = (molecules * ((ranks * 2) // len(molecules) + 1))[: ranks * 2]
        cluster = SimCluster(ranks)
        engine = DataParallelEngine(cluster, config, normalizer, optimizer="zero", seed=0)
        engine.train_step(graphs)
        states = [
            tracker.snapshot().by_category["optimizer_states"]
            for tracker in cluster.trackers()
        ]
        results[ranks] = {
            "max_state_bytes": max(states),
            "comm_seconds": cluster.ranks[0].comm_time,
        }
    return results


def bench_ablation_zero_ranks(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    rows = [
        [
            str(ranks),
            f"{values['max_state_bytes'] / 1e6:.2f} MB",
            f"{values['comm_seconds'] * 1e3:.3f} ms",
        ]
        for ranks, values in results.items()
    ]
    write_result(
        "ablation_zero_ranks",
        ascii_table(
            ["ranks", "max per-rank Adam state", "modeled comm/step"],
            rows,
            title="Ablation: ZeRO-1 state sharding vs rank count",
        ),
    )
    # State shards ~1/R (allow imbalance from whole-tensor partitioning).
    assert results[4]["max_state_bytes"] < results[1]["max_state_bytes"] / 2.5
    assert results[8]["max_state_bytes"] < results[2]["max_state_bytes"] / 2.5
    # Communication grows with the ring size.
    assert results[8]["comm_seconds"] > results[2]["comm_seconds"]
