"""Noisy-neighbor overload bench: fairness and brownout under a flood.

The overload-protection contract this bench holds the fleet to:

- **Latency isolation** — with a bulk flood saturating every replica,
  an interactive trickle's p95 latency stays within a fixed multiple of
  its unloaded baseline (``OVERLOAD_P95_MULTIPLE``, default 25x).  The
  baseline denominator is floored at 20 ms so a lucky unloaded run
  cannot inflate the ratio; an unfair FIFO queue would park interactive
  behind the whole flood backlog (hundreds of ms, well past the
  ceiling).  Weighted-fair lanes are the mechanism: interactive holds
  its 8-of-12 share of every batch no matter how deep the bulk backlog
  grows.
- **Shed ordering** — zero interactive requests are rejected while the
  bulk/background lanes take real 429s.  Brownout degrades in priority
  order, never touching interactive.
- **Deterministic brownout** — the controller *enters* under the flood
  (proved by typed 429s with honest ``Retry-After`` hints; the only
  429 source here is brownout — quotas are off and ``--max-pending``
  is 0) and *exits* back to ``normal`` once the flood drains, within a
  bounded wait.

Results merge into ``benchmarks/results/BENCH_overload.json`` (the CI
artifact).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_overload_fairness.py \
          -o python_files="bench_*.py" -o python_functions="bench_*" \
          --benchmark-disable -q
"""

import json
import os
import tempfile
import threading
import time
import urllib.error
import urllib.request

import numpy as np

from _shared import RESULTS_DIR, write_result
from repro.serving import ReplicaSpec, ReplicaSupervisor

_P95_MULTIPLE = float(os.environ.get("OVERLOAD_P95_MULTIPLE", "25.0"))
_BASELINE_FLOOR_S = 0.020  # denominator floor: don't let a fast baseline lie
_EXIT_TIMEOUT_S = float(os.environ.get("OVERLOAD_EXIT_TIMEOUT_S", "60.0"))

_JSON_PATH = RESULTS_DIR / "BENCH_overload.json"

_ATOMS = 64  # per structure: a real forward, not cache-trivial
_FLOOD_THREADS = 6
_FLOOD_STRUCTURES = 16  # per bulk request: each lands 16 graphs in the queue
_FLOOD_S = 6.0
_BASELINE_REQUESTS = 40
_TRICKLE_GAP_S = 0.03


def _structure(rng) -> dict:
    return {
        "atomic_numbers": rng.integers(1, 9, _ATOMS).tolist(),
        "positions": (rng.random((_ATOMS, 3)) * 6.0).round(4).tolist(),
    }


def _body(rng, structures: int, priority: str | None, client_id: str | None) -> bytes:
    payload = {
        "schema_version": "v1",
        "structures": [_structure(rng) for _ in range(structures)],
    }
    if priority is not None:
        payload["priority"] = priority
    if client_id is not None:
        payload["client_id"] = client_id
    return json.dumps(payload).encode()


def _post(url: str, body: bytes, timeout: float = 120.0) -> tuple[int, str | None]:
    """(status, Retry-After header) — typed HTTP errors return, not raise."""
    request = urllib.request.Request(
        url + "/v1/predict", data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            response.read()
            return response.status, None
    except urllib.error.HTTPError as error:
        error.read()
        return error.code, error.headers.get("Retry-After")


def _stats_admission(url: str) -> dict:
    with urllib.request.urlopen(url + "/v1/stats", timeout=30) as response:
        payload = json.loads(response.read())
    (entry,) = payload["models"].values()
    return entry["admission"]


def _p95(latencies: list[float]) -> float:
    return float(np.percentile(np.asarray(latencies), 95.0))


class _LaneCounters:
    """Thread-safe served/shed tally per lane, with Retry-After checks."""

    def __init__(self):
        self.lock = threading.Lock()
        self.served: dict[str, int] = {}
        self.shed: dict[str, int] = {}
        self.bad_hints = 0

    def record(self, lane: str, status: int, retry_after: str | None) -> None:
        with self.lock:
            if status == 200:
                self.served[lane] = self.served.get(lane, 0) + 1
            elif status == 429:
                self.shed[lane] = self.shed.get(lane, 0) + 1
                # Every 429 must carry an integral Retry-After >= 1.
                if retry_after is None or int(retry_after) < 1:
                    self.bad_hints += 1
            else:
                raise AssertionError(f"unexpected status {status} on {lane} lane")


def _interactive_trickle(url: str, stop: threading.Event, counters, latencies):
    rng = np.random.default_rng(7)
    while not stop.is_set():
        body = _body(rng, 1, "interactive", "dashboard")
        start = time.perf_counter()
        status, hint = _post(url, body)
        latencies.append(time.perf_counter() - start)
        counters.record("interactive", status, hint)
        stop.wait(_TRICKLE_GAP_S)


def _bulk_flood(url: str, stop: threading.Event, counters, seed: int):
    rng = np.random.default_rng(seed)
    while not stop.is_set():
        status, hint = _post(url, _body(rng, _FLOOD_STRUCTURES, "bulk", "batch-job"))
        counters.record("bulk", status, hint)
        if status == 429:
            stop.wait(min(float(hint or 1), 0.2))


def _background_ping(url: str, stop: threading.Event, counters):
    rng = np.random.default_rng(999)
    while not stop.is_set():
        status, hint = _post(url, _body(rng, 1, "background", "indexer"))
        counters.record("background", status, hint)
        stop.wait(0.1)


def bench_overload_fairness(benchmark):
    """Bulk flood + interactive trickle through a real brownout fleet."""
    cache = os.path.join(tempfile.mkdtemp(prefix="repro-overload-bench-"), "at.json")
    spec = ReplicaSpec(
        args=(
            "--preset", "tiny",
            "--workers", "1",
            "--flush-interval", "0.002",
            "--max-pending", "0",  # brownout is the only 429 source
            "--max-graphs", "4",  # small batches keep interactive latency tight
            "--brownout-enter", "0.12",
            "--brownout-exit", "0.04",
            "--brownout-dwell", "0.1",
            "--autotune-cache", cache,
        )
    )
    supervisor = ReplicaSupervisor(count=2, spec=spec, probe_interval_s=0.2)
    supervisor.start()
    try:
        url = supervisor.url
        rng = np.random.default_rng(3)
        for _ in range(10):  # warmup: plan compiles, buffer pools
            _post(url, _body(rng, 1, "interactive", None))

        # Phase 1: unloaded interactive baseline.
        baseline: list[float] = []
        for _ in range(_BASELINE_REQUESTS):
            body = _body(rng, 1, "interactive", "dashboard")
            start = time.perf_counter()
            status, _hint = _post(url, body)
            assert status == 200
            baseline.append(time.perf_counter() - start)
        baseline_p95 = _p95(baseline)

        # Phase 2: the noisy neighbors move in.
        counters = _LaneCounters()
        loaded: list[float] = []
        stop = threading.Event()
        threads = [
            threading.Thread(
                target=_interactive_trickle, args=(url, stop, counters, loaded)
            ),
            threading.Thread(target=_background_ping, args=(url, stop, counters)),
        ] + [
            threading.Thread(target=_bulk_flood, args=(url, stop, counters, 100 + i))
            for i in range(_FLOOD_THREADS)
        ]
        for thread in threads:
            thread.start()
        time.sleep(_FLOOD_S)
        stop.set()
        for thread in threads:
            thread.join(timeout=120.0)
        loaded_p95 = _p95(loaded)
        multiple = loaded_p95 / max(baseline_p95, _BASELINE_FLOOR_S)

        interactive_shed = counters.shed.get("interactive", 0)
        noisy_shed = counters.shed.get("bulk", 0) + counters.shed.get("background", 0)

        # Phase 3: the flood is gone — brownout must walk back to normal.
        # Admissions drive the state machine, so keep a light pulse going.
        exit_deadline = time.monotonic() + _EXIT_TIMEOUT_S
        admission = _stats_admission(url)
        while (
            admission["brownout"]["state"] != "normal"
            and time.monotonic() < exit_deadline
        ):
            _post(url, _body(rng, 1, "interactive", None))
            time.sleep(0.1)
            admission = _stats_admission(url)
        exited = admission["brownout"]["state"] == "normal"

        text = (
            "overload_fairness\n"
            f"interactive p95 unloaded : {baseline_p95 * 1e3:8.1f} ms\n"
            f"interactive p95 flooded  : {loaded_p95 * 1e3:8.1f} ms "
            f"({multiple:.1f}x, ceiling {_P95_MULTIPLE:.0f}x)\n"
            f"served                   : {counters.served}\n"
            f"shed (429)               : {counters.shed}\n"
            f"brownout transitions     : {admission['brownout']['transitions']} "
            f"(final state {admission['brownout']['state']})"
        )
        write_result("overload_fairness", text)

        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        _JSON_PATH.write_text(
            json.dumps(
                {
                    "baseline_p95_ms": round(baseline_p95 * 1e3, 2),
                    "flooded_p95_ms": round(loaded_p95 * 1e3, 2),
                    "p95_multiple": round(multiple, 2),
                    "p95_multiple_ceiling": _P95_MULTIPLE,
                    "served": counters.served,
                    "shed": counters.shed,
                    "flood_threads": _FLOOD_THREADS,
                    "flood_structures_per_request": _FLOOD_STRUCTURES,
                    "brownout_transitions": admission["brownout"]["transitions"],
                    "brownout_exited": exited,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )

        # The gates, in contract order.
        assert interactive_shed == 0, (
            f"{interactive_shed} interactive requests shed — interactive "
            "must never be rejected before bulk/background"
        )
        assert noisy_shed > 0, (
            "flood produced no bulk/background 429s — brownout never "
            "engaged, the fleet was not saturated"
        )
        assert counters.bad_hints == 0, "a 429 arrived without an honest Retry-After"
        assert admission["lanes"]["interactive"]["shed"] == 0
        assert counters.served.get("interactive", 0) > 0
        assert multiple <= _P95_MULTIPLE, (
            f"interactive p95 degraded {multiple:.1f}x under the flood "
            f"(ceiling {_P95_MULTIPLE:.0f}x)"
        )
        assert exited, (
            f"brownout failed to return to normal within {_EXIT_TIMEOUT_S:.0f}s "
            "of the flood draining"
        )
        assert admission["brownout"]["transitions"] >= 2  # entered and exited
    finally:
        supervisor.close()
    benchmark(lambda: None)
