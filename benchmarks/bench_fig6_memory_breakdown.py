"""FIG6 bench — measured peak-memory breakdown, vanilla vs ckpt+ZeRO."""

from benchmarks._shared import write_result
from repro.experiments.memory_breakdown import run_fig6
from repro.experiments.paperdata import FIG6_PAPER


def bench_fig6_memory_breakdown(benchmark):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    write_result("fig6", result.to_text())
    # (a): activations dominate, and land near the paper's 76.9 % share
    # (the workload is calibrated to the same regime; see module docs).
    assert result.claim_activations_dominate_vanilla()
    assert abs(result.vanilla_breakdown["activations"] - FIG6_PAPER["vanilla"]["activations"]) < 12.0
    # (b): the optimized setting stops activations from dominating as before
    # and cuts the per-rank peak.
    assert result.claim_activations_minor_after()
    assert result.optimized_peak_bytes < result.vanilla_peak_bytes
