"""ABL1 bench — over-smoothing vs depth (mechanism behind Fig. 5).

Measures the MAD (mean average distance) profile of EGNN stacks of
increasing depth on a fixed batch: the per-layer feature contraction the
paper hypothesizes caps useful GNN depth at ~3 layers.
"""

import numpy as np

from benchmarks._shared import write_result
from repro.data.aggregate import generate_corpus
from repro.experiments.report import ascii_table
from repro.graph.batch import collate
from repro.models import EGNNBackbone, ModelConfig
from repro.scaling import mad_profile, oversmoothing_slope


def _run_ablation() -> tuple[str, dict[int, float]]:
    corpus = generate_corpus(40, seed=71)
    batch = collate(corpus.graphs[:24])
    rows = []
    final_mad: dict[int, float] = {}
    for depth in (1, 2, 3, 4, 6, 8):
        backbone = EGNNBackbone(ModelConfig(hidden_dim=32, num_layers=depth), seed=0)
        profile = mad_profile(backbone, batch)
        final_mad[depth] = profile[-1]
        rows.append(
            [
                str(depth),
                f"{profile[0]:.4f}",
                f"{profile[-1]:.4f}",
                f"{oversmoothing_slope(profile):+.4f}",
            ]
        )
    table = ascii_table(
        ["depth", "MAD after embedding", "MAD after last layer", "slope/layer"],
        rows,
        title="Ablation: over-smoothing (feature diversity vs depth)",
    )
    return table, final_mad


def bench_ablation_oversmoothing(benchmark):
    table, final_mad = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    write_result("ablation_oversmoothing", table)
    # Deeper stacks end with less feature diversity; depth 8 is far more
    # collapsed than depth 1.
    assert final_mad[8] < final_mad[1]
    depths = sorted(final_mad)
    values = np.array([final_mad[d] for d in depths])
    # Overall decreasing trend (allow small local non-monotonicity).
    assert values[-1] < values[0] * 0.9
