"""CI smoke for the HTTP serving API — the real CLI server, real sockets.

Boots `python -m repro serve --http 0` as a subprocess (ephemeral port,
tiny preset), then asserts the deployment contract end to end:

1. `/v1/healthz` comes up and reports the served model,
2. a POSTed structure returns 200 with a schema-valid `PredictResponse`
   (finite energy, `(n_atoms, 3)` finite forces),
3. a burst beyond `--max-pending 1` returns 429 with a typed
   `overloaded` error body,
4. a POSTed `/v1/relax` on a perturbed structure (second server, default
   flush tick so relax steps are not throttled by the admission-control
   preset above) returns 200 with a schema-valid, *converged*
   `RelaxResponse`,
5. a POSTed `/v1/md` (same second server) streams NDJSON: schema-valid
   `frame` lines in step order, ending with exactly one terminal
   `summary` line that parses as a schema-valid `MDResponse`,
6. SIGTERM exits 0 through the graceful path and saves the autotune
   cache for the next replica.

Run:  PYTHONPATH=src python benchmarks/smoke_http_api.py
Exits nonzero (with the server log on stdout) on any violation.
"""

from __future__ import annotations

import json
import math
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.api import MDFramePayload, MDResponse, PredictResponse, RelaxResponse

WATER = {
    "atomic_numbers": [8, 1, 1],
    "positions": [[0.0, 0.0, 0.117], [0.0, 0.755, -0.471], [0.0, -0.755, -0.471]],
}


def start_server(cache_path: str, *extra_args: str) -> tuple[subprocess.Popen, str]:
    """Launch `repro serve --http 0 --preset tiny` + ``extra_args``.

    Returns ``(process, base_url)`` once the CLI reports its ephemeral
    port.  Shared with ``tests/api/test_cli_http.py`` — the CLI's
    machine-readable ``bound_port=<port>`` line is load-bearing here
    (the human banner is parsed only as a fallback), and this helper is
    its single parser.  Binding port 0 and reading the kernel-assigned
    port back means parallel CI jobs can never collide on a port.
    """
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--http",
            "0",
            "--preset",
            "tiny",
            "--autotune-cache",
            cache_path,
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 60
    while True:
        line = process.stdout.readline()
        match = re.search(r"bound_port=(\d+)", line)
        if match:
            return process, f"http://127.0.0.1:{match.group(1)}"
        match = re.search(r"on (http://[\d.]+:\d+)", line)  # pre-bound_port banner
        if match:
            return process, match.group(1)
        if not line or process.poll() is not None or time.monotonic() > deadline:
            process.kill()
            raise AssertionError(f"server never reported its URL (last line: {line!r})")


def post_predict(base_url: str, structures: list[dict]):
    request = urllib.request.Request(
        base_url + "/v1/predict",
        data=json.dumps({"schema_version": "v1", "structures": structures}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, json.loads(response.read())


def main() -> int:
    cache_path = os.path.join(tempfile.mkdtemp(prefix="repro-smoke-"), "autotune.json")
    process, base_url = start_server(
        cache_path, "--workers", "1", "--max-pending", "1", "--flush-interval", "0.5"
    )
    try:
        # 1. Liveness.
        deadline = time.monotonic() + 60
        while True:
            try:
                with urllib.request.urlopen(base_url + "/v1/healthz", timeout=1) as resp:
                    health = json.loads(resp.read())
                    break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)
        assert health["status"] == "ok", health
        assert health["models"] == ["default"], health
        print(f"healthz ok at {base_url}")

        # 2. One structure -> 200 with schema-valid energy/forces.
        status, payload = post_predict(base_url, [WATER])
        assert status == 200, status
        response = PredictResponse.from_json_dict(payload)  # strict schema check
        (result,) = response.results
        assert result.n_atoms == 3
        assert math.isfinite(result.energy)
        assert result.forces.shape == (3, 3)
        assert np.isfinite(result.forces).all()
        print(f"predict ok: energy={result.energy:+.6f}, model={response.model!r}")

        # 3. Burst beyond --max-pending 1 -> 429 with a typed error body.
        burst = [
            {
                "atomic_numbers": [6, 6],
                "positions": [[0.0, 0.0, 0.0], [0.0, 0.0, 1.3 + 0.01 * index]],
            }
            for index in range(6)
        ]
        try:
            status, payload = post_predict(base_url, burst)
            raise AssertionError(f"expected 429, got {status}: {payload}")
        except urllib.error.HTTPError as error:
            assert error.code == 429, error.code
            body = json.loads(error.read())
            assert body["error"]["code"] == "overloaded", body
            print("admission control ok: burst rejected with 429/overloaded")

        # 4. /v1/relax on a perturbed structure -> 200, schema-valid,
        # converged.  A second server with the default flush tick: the
        # admission-control server above runs --flush-interval 0.5, which
        # would throttle every relax force evaluation to the batcher tick.
        relax_cache = os.path.join(tempfile.mkdtemp(prefix="repro-smoke-"), "autotune.json")
        relax_process, relax_url = start_server(relax_cache, "--workers", "1")
        try:
            perturbed = {
                "atomic_numbers": WATER["atomic_numbers"],
                "positions": [
                    [x + 0.05, y - 0.03, z + 0.04]
                    for x, y, z in WATER["positions"]
                ],
            }
            request = urllib.request.Request(
                relax_url + "/v1/relax",
                data=json.dumps(
                    {"schema_version": "v1", "structure": perturbed, "max_steps": 200}
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=120) as resp:
                assert resp.status == 200, resp.status
                relax_body = json.loads(resp.read())
            relaxed = RelaxResponse.from_json_dict(relax_body)  # strict schema check
            assert relaxed.result.converged, relax_body
            assert relaxed.result.reason in ("fmax", "step"), relax_body
            assert relaxed.result.energy <= relaxed.result.energy_initial
            assert relaxed.result.positions.shape == (3, 3)
            assert np.isfinite(relaxed.result.positions).all()
            print(
                f"relax ok: converged in {relaxed.result.steps} steps "
                f"(reason={relaxed.result.reason}, "
                f"dE={relaxed.result.energy - relaxed.result.energy_initial:+.6f}, "
                f"{relaxed.result.neighbor_reuses} neighbor-list reuses)"
            )

            # 5. /v1/md -> a streamed NDJSON trajectory: schema-valid
            # frame lines in step order, one terminal summary line.
            request = urllib.request.Request(
                relax_url + "/v1/md",
                data=json.dumps(
                    {
                        "schema_version": "v1",
                        "structure": WATER,
                        "n_steps": 20,
                        "timestep_fs": 0.5,
                        "thermostat": "langevin",
                        "temperature_k": 300.0,
                        "seed": 7,
                        "frame_interval": 5,
                    }
                ).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=120) as resp:
                assert resp.status == 200, resp.status
                content_type = resp.headers["Content-Type"]
                assert content_type == "application/x-ndjson", content_type
                lines = [json.loads(line) for line in resp.read().splitlines()]
            assert len(lines) >= 2, lines
            assert all("frame" in line for line in lines[:-1]), lines
            frames = [MDFramePayload.from_json_dict(line) for line in lines[:-1]]
            assert [frame.step for frame in frames] == [0, 5, 10, 15, 20], frames
            for frame in frames:  # strict schema check per streamed line
                assert frame.positions.shape == (3, 3)
                assert np.isfinite(frame.positions).all()
                assert np.isfinite(frame.velocities).all()
                assert math.isfinite(frame.energy)
            assert "summary" in lines[-1], lines[-1]
            md_summary = MDResponse.from_json_dict(lines[-1])  # strict schema check
            assert md_summary.result.steps == 20, lines[-1]
            assert md_summary.result.final_step == 20, lines[-1]
            assert md_summary.result.thermostat == "langevin", lines[-1]
            print(
                f"md ok: streamed {len(frames)} frames over 20 langevin steps "
                f"(T_final={md_summary.result.temperature_k:.0f}K, "
                f"{md_summary.result.neighbor_reuses} neighbor-list reuses)"
            )
        finally:
            relax_process.terminate()
            relax_process.communicate(timeout=60)

        # 6. SIGTERM -> graceful exit 0 + autotune cache saved.
        process.send_signal(signal.SIGTERM)
        out, _ = process.communicate(timeout=60)
        assert process.returncode == 0, (process.returncode, out)
        assert "server stopped cleanly" in out, out
        assert os.path.exists(cache_path), "autotune cache not saved on shutdown"
        print("graceful SIGTERM shutdown ok (autotune cache saved)")
    finally:
        if process.poll() is None:
            process.kill()
            out, _ = process.communicate()
            print(out)
    print("HTTP API smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
