"""Shared state and reporting helpers for the benchmark harness.

The Fig. 3 and Fig. 4 benches consume the *same* two-tier scaling study
(one measured ladder is ~2 minutes of real training); a process-level
cache runs it once per pytest session.  Every bench also writes its
regenerated table/figure to ``benchmarks/results/<id>.txt`` so the
artifacts are diffable after a run.
"""

from __future__ import annotations

import functools
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def write_result(experiment_id: str, text: str) -> Path:
    """Persist a bench's regenerated artifact and echo it to stdout."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
    return path


@functools.lru_cache(maxsize=1)
def shared_scaling_study():
    """The measured ladder + calibrated surface, computed once per session."""
    from repro.experiments.scaling_study import ScalingStudy
    from repro.scaling import LadderSpec

    return ScalingStudy.run(LadderSpec())


@functools.lru_cache(maxsize=1)
def shared_depth_width_grid():
    """The measured (depth x width) grid, computed once per session."""
    from repro.scaling import DepthWidthSpec, run_measured_grid

    spec = DepthWidthSpec(
        corpus_graphs=240,
        widths=(8, 16),
        depths=(3, 4, 5, 6),
        epochs=3,
    )
    return run_measured_grid(spec)
