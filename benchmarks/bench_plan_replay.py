"""Execution-plan replay vs the unplanned no-grad fast path.

The plan subsystem's claim has two halves, and this bench pins both:

- **Throughput.**  On small, dispatch-bound structures (single
  molecules, where Python op dispatch — Tensor wrappers, registry
  lookups, pool requests — rivals the numpy math itself) the planned
  replay must beat the PR-4 unplanned fast path by at least
  ``PLAN_SPEEDUP_FLOOR`` (default 1.3x).  Unlike the parallel-backend
  floors this one is *not* a parallelism claim: removing per-call
  dispatch is deterministic work-avoidance, so the floor holds on a
  single core and is asserted unconditionally.
- **Bit-exactness.**  Replays must return the *same bits* as the
  unplanned path — a fast wrong answer is a regression, not a win —
  checked here across molecular and periodic structures.

Numbers merge into ``benchmarks/results/BENCH_plan.json`` (uploaded as
a CI artifact next to the serving/parallel trajectories).
"""

import json
import os
import time

import numpy as np

from _shared import RESULTS_DIR, write_result
from repro.graph.batch import collate
from repro.models import HydraModel, ModelConfig
from repro.tensor.allocator import BufferPool, use_pool

_FLOOR = float(os.environ.get("PLAN_SPEEDUP_FLOOR", "1.3"))
_JSON_PATH = RESULTS_DIR / "BENCH_plan.json"

#: Small structures are the dispatch-bound regime the plans target: a
#: screening request is one molecule, not a collated training batch.
_STRUCTURES = 8
_WIDTH = 32
_LAYERS = 3


def _merge_json(update: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {}
    if _JSON_PATH.exists():
        payload = json.loads(_JSON_PATH.read_text())
    payload.update(update)
    payload["floor"] = _FLOOR
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _molecules(count: int, seed: int) -> list:
    from repro.data.sources import ANI1xSource

    return ANI1xSource().sample(count, seed)


def _workload() -> tuple[HydraModel, list]:
    model = HydraModel(ModelConfig(hidden_dim=_WIDTH, num_layers=_LAYERS), seed=0)
    batches = [collate([graph]) for graph in _molecules(_STRUCTURES, seed=0)]
    return model, batches


def bench_plan_replay_speedup(benchmark):
    """Planned replay vs unplanned fast path on dispatch-bound structures."""
    model, batches = _workload()
    pool = BufferPool()

    def sweep(plan: bool) -> None:
        for batch in batches:
            model.serve(batch, plan=plan)

    def best_of(plan: bool, rounds: int = 5, iters: int = 15) -> float:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            for _ in range(iters):
                sweep(plan)
            best = min(best, time.perf_counter() - start)
        return best / (iters * len(batches))

    with use_pool(pool):
        sweep(True)  # compile every bucket up front
        sweep(False)  # warm the unplanned path's pools and caches
        unplanned_s = best_of(False)
        planned_s = best_of(True)
    speedup = unplanned_s / planned_s
    stats = model.plans.stats

    mean_atoms = float(np.mean([batch.num_nodes for batch in batches]))
    text = (
        "plan_replay_speedup "
        f"(structures={len(batches)}, mean {mean_atoms:.1f} atoms, "
        f"width={_WIDTH}, layers={_LAYERS})\n"
        f"unplanned : {unplanned_s * 1e6:8.1f} us/forward\n"
        f"planned   : {planned_s * 1e6:8.1f} us/forward\n"
        f"speedup   : {speedup:8.2f}x (floor {_FLOOR}x)\n"
        f"plan cache: {stats.compiled} compiled, "
        f"{stats.hits} hits / {stats.misses} misses"
    )
    write_result("plan_replay", text)
    _merge_json(
        {
            "unplanned_us_per_forward": round(unplanned_s * 1e6, 2),
            "planned_us_per_forward": round(planned_s * 1e6, 2),
            "speedup": round(speedup, 3),
            "structures": len(batches),
            "mean_atoms": round(mean_atoms, 1),
            "plans_compiled": stats.compiled,
            "plan_hits": stats.hits,
            "plan_misses": stats.misses,
        }
    )
    # Deterministic dispatch removal: asserted unconditionally, unlike
    # the core-count-gated parallelism floors.
    assert speedup >= _FLOOR, (
        f"planned replay only {speedup:.2f}x over the unplanned fast path "
        f"(required >= {_FLOOR}x)"
    )
    benchmark(lambda: sweep(True))


def bench_plan_bit_exactness(benchmark):
    """Replayed outputs must match the unplanned path bit for bit."""
    from repro.data.sources import MPTrjSource

    model = HydraModel(ModelConfig(hidden_dim=_WIDTH, num_layers=_LAYERS), seed=1)
    cases = [collate([graph]) for graph in _molecules(4, seed=2)]
    cases.append(collate(_molecules(3, seed=5)))
    cases.append(collate(MPTrjSource().sample(2, 1)))

    checked = 0
    for batch in cases:
        unplanned = model.serve(batch, plan=False)
        model.serve(batch, plan=True)  # compile
        replayed = model.serve(batch, plan=True)  # replay
        assert np.array_equal(unplanned["energy"], replayed["energy"])
        assert np.array_equal(unplanned["forces"], replayed["forces"])
        checked += 1
    write_result(
        "plan_bit_exactness",
        f"plan_bit_exactness: {checked} batches replayed bit-identically "
        "(molecular + collated + periodic)",
    )
    _merge_json({"bit_exact_batches": checked})
    benchmark(lambda: model.serve(cases[0], plan=True))
