"""TAB2 bench — relative peak memory / step time of training techniques."""

from benchmarks._shared import write_result
from repro.experiments.techniques import run_table2


def bench_table2_techniques(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    write_result("table2", result.to_text())
    # The paper's orderings: memory strictly improves with each technique,
    # modeled step time strictly degrades.
    assert result.claim_memory_ordering()
    assert result.claim_time_ordering()
    # Checkpointing alone must cut peak memory substantially (paper: 42 %).
    relative = result.relative_memory()
    assert relative["+activation_checkpointing"] < 85.0
    assert relative["+zero_optimizer"] < relative["+activation_checkpointing"]
