"""Incremental skin neighbor lists vs from-scratch rebuilds on a trajectory.

The trajectory workload (relaxation, MD) presents the same structure
over and over with angstrom-fraction displacements.  The serving stack's
answer is the Verlet-style :class:`SkinNeighborList`: build candidates
once at ``cutoff + skin``, then re-filter by exact distance while atoms
stay inside the skin bound.  This bench drives both paths over the same
MD-like displacement stream and pins two claims:

- **Throughput.**  The incremental path must beat per-step
  ``build_edges`` rebuilds by at least ``RELAX_SPEEDUP_FLOOR`` (default
  1.5x locally; CI relaxes it for noisy shared runners).  Like the plan
  floor this is deterministic work-avoidance — a KD-tree over periodic
  images skipped per step — so it holds on a single core.
- **Bit-identity.**  At every step the incremental edges must equal the
  canonicalized from-scratch edges exactly; a fast wrong neighbor list
  is a regression, not a win.

Numbers merge into ``benchmarks/results/BENCH_relax.json`` (uploaded as
a CI artifact next to the serving/parallel/plan/replica trajectories).
"""

import json
import os
import time

import numpy as np

from _shared import RESULTS_DIR, write_result
from repro.graph.radius import SkinNeighborList, build_edges, canonicalize_edges

_FLOOR = float(os.environ.get("RELAX_SPEEDUP_FLOOR", "1.5"))
_JSON_PATH = RESULTS_DIR / "BENCH_relax.json"

#: A bulk-like periodic cell: big enough that the KD-tree over replicated
#: images costs real time, small enough for a quick CI job.
_ATOMS = 80
_CUTOFF = 4.5
_SKIN = 0.4
_STEPS = 60
#: Per-step per-coordinate displacement scale — MD-like thermal jitter,
#: far inside the skin bound so candidate reuse dominates.
_STEP_SCALE = 0.01

_CELL = np.array(
    [
        [9.4, 0.0, 0.0],
        [1.7, 8.9, 0.0],
        [-0.9, 1.1, 9.8],
    ]
)
_PBC = (True, True, True)


def _merge_json(update: dict) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {}
    if _JSON_PATH.exists():
        payload = json.loads(_JSON_PATH.read_text())
    payload.update(update)
    payload["floor"] = _FLOOR
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _displacement_stream(steps: int = _STEPS, seed: int = 0) -> list[np.ndarray]:
    """Precomputed MD-like position stream (same stream for both paths)."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0.0, 9.0, size=(_ATOMS, 3))
    stream = [positions]
    for _ in range(steps - 1):
        positions = positions + rng.normal(0.0, _STEP_SCALE, size=positions.shape)
        stream.append(positions)
    return stream


def _rebuild_edges(positions: np.ndarray):
    """The from-scratch path with the same output contract (canonical order)."""
    return canonicalize_edges(*build_edges(positions, _CUTOFF, _CELL, _PBC))


def bench_relax_trajectory_speedup(benchmark):
    """Incremental skin-list updates vs per-step from-scratch rebuilds."""
    stream = _displacement_stream()

    def incremental_sweep() -> SkinNeighborList:
        nl = SkinNeighborList(_CUTOFF, _SKIN)
        for positions in stream:
            nl.update(positions, _CELL, _PBC)
        return nl

    def rebuild_sweep() -> None:
        for positions in stream:
            _rebuild_edges(positions)

    # Sanity inside the bench: the fast path must be the *same* graph,
    # bit for bit, at every step of the stream it is being timed on.
    nl = SkinNeighborList(_CUTOFF, _SKIN)
    for positions in stream:
        edge_index, edge_shift = nl.update(positions, _CELL, _PBC)
        ref_index, ref_shift = _rebuild_edges(positions)
        assert np.array_equal(edge_index, ref_index)
        assert np.array_equal(edge_shift, ref_shift)
    reuse_rate = nl.reuses / (nl.rebuilds + nl.reuses)

    def best_of(fn, rounds: int = 5) -> float:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best / len(stream)

    rebuild_sweep()  # warm caches (shift ranges, allocator) before timing
    incremental_sweep()
    rebuild_s = best_of(rebuild_sweep)
    incremental_s = best_of(incremental_sweep)
    speedup = rebuild_s / incremental_s

    edges = _rebuild_edges(stream[0])[0].shape[1]
    text = (
        "relax_trajectory_speedup "
        f"(atoms={_ATOMS}, steps={len(stream)}, cutoff={_CUTOFF}, skin={_SKIN}, "
        f"~{edges} edges, triclinic PBC)\n"
        f"rebuild     : {rebuild_s * 1e6:8.1f} us/step\n"
        f"incremental : {incremental_s * 1e6:8.1f} us/step\n"
        f"speedup     : {speedup:8.2f}x (floor {_FLOOR}x)\n"
        f"skin list   : {nl.rebuilds} rebuilds, {nl.reuses} reuses "
        f"({reuse_rate:.0%} reuse)"
    )
    write_result("relax_trajectory", text)
    _merge_json(
        {
            "rebuild_us_per_step": round(rebuild_s * 1e6, 2),
            "incremental_us_per_step": round(incremental_s * 1e6, 2),
            "speedup": round(speedup, 3),
            "atoms": _ATOMS,
            "steps": len(stream),
            "edges": int(edges),
            "neighbor_rebuilds": nl.rebuilds,
            "neighbor_reuses": nl.reuses,
            "reuse_rate": round(reuse_rate, 4),
        }
    )
    assert speedup >= _FLOOR, (
        f"incremental neighbor lists only {speedup:.2f}x over per-step rebuilds "
        f"(required >= {_FLOOR}x)"
    )
    benchmark(incremental_sweep)


def bench_relax_loop_convergence(benchmark):
    """The served relax loop terminates and rides the plan cache."""
    from repro.graph.atoms import AtomGraph
    from repro.models import HydraModel, ModelConfig
    from repro.serving import PredictionService, RelaxSettings, ServiceConfig

    rng = np.random.default_rng(1)
    n = 16
    positions = rng.uniform(0.0, 5.0, size=(n, 3))
    graph = AtomGraph(
        atomic_numbers=rng.integers(1, 9, size=n),
        positions=positions,
        edge_index=np.zeros((2, 0), dtype=np.int64),
        edge_shift=np.zeros((0, 3)),
        source="bench",
    )
    model = HydraModel(ModelConfig(hidden_dim=32, num_layers=3), seed=0)
    service = PredictionService(model, ServiceConfig(plan=True))
    settings = RelaxSettings(max_steps=60, cutoff=4.0)

    result = service.relax(graph, settings)
    assert result.reason in ("fmax", "step", "max_steps")
    assert result.energy <= result.energy_initial
    plans = service.telemetry()["plans"]
    relax = service.telemetry()["relax"]
    write_result(
        "relax_loop",
        "relax_loop_convergence "
        f"(atoms={n}): {result.steps} steps, reason={result.reason}, "
        f"dE={result.energy - result.energy_initial:+.4f}, "
        f"plan hits={plans['plan_hits']}, "
        f"neighbor reuse={relax['neighbor_reuses']}/{relax['steps']}",
    )
    _merge_json(
        {
            "relax_steps": result.steps,
            "relax_reason": result.reason,
            "relax_converged": bool(result.converged),
            "relax_plan_hits": int(plans["plan_hits"]),
        }
    )
    benchmark(lambda: service.relax(graph, settings))
