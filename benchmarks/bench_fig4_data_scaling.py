"""FIG4 bench — data scaling: test loss vs dataset size per model size.

Shares the measured ladder with the Fig. 3 bench (cached per session)
and regenerates the Fig. 4 series plus the 0.1 TB mismatch bump.
"""

from benchmarks._shared import shared_scaling_study, write_result
from repro.experiments.data_scaling import Fig4Result


def bench_fig4_data_scaling(benchmark):
    study = benchmark.pedantic(shared_scaling_study, rounds=1, iterations=1)
    result = Fig4Result(study)
    write_result("fig4", result.to_text())
    # The paper's Fig. 4 claims.
    assert study.claim_data_scaling_helps()
    assert study.claim_mismatch_bump()
    # Measured tier: on the full corpus, more data beat the smallest subset
    # for the largest trained width.
    by_width = study.measured_fig4_series()
    widest = by_width[max(by_width)]
    assert widest[-1][1] < widest[0][1]
