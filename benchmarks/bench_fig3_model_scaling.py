"""FIG3 bench — model scaling: test loss vs parameters per dataset size.

Runs the full measured ladder (real training over a (width x fraction)
grid), fits the joint scaling law, and regenerates the paper-scale Fig. 3
series from the calibrated surface.
"""

from benchmarks._shared import shared_scaling_study, write_result
from repro.experiments.model_scaling import Fig3Result


def bench_fig3_model_scaling(benchmark):
    study = benchmark.pedantic(shared_scaling_study, rounds=1, iterations=1)
    result = Fig3Result(study)
    write_result("fig3", result.to_text())
    # The paper's Fig. 3 claims.
    assert study.claim_model_scaling_helps()
    assert study.claim_diminishing_returns()
    # The measured fit must explain the ladder reasonably.
    assert study.ladder.fit.r_squared > 0.5
