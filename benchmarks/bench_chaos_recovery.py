"""Chaos-recovery bench: injected faults vs a closed-loop retrying client.

The fault-tolerance counterpart of the replica-scaling bench: instead of
asking how fast the fleet goes, it asks how fast the fleet *heals*.  A
3-replica fleet runs with an injected fault plan — replica 0 wedges
(alive, accepting, never finishing) after its 8th request, replica 1
hard-crashes after its 8th — while a closed-loop client with the real
retrying ``HttpTransport`` drives a sequential request stream.

Recorded to ``benchmarks/results/BENCH_chaos.json`` (the CI artifact):

- client-observed latency percentiles (the max is the wedge window: how
  long one request waited for watchdog kill + reroute),
- per-replica outage windows sampled from the supervisor's view,
- watchdog escalation counters and router breaker/reroute counters,
- time from the last request until the fleet is fully healed.

Hard asserts (resilience is a correctness bar, not a speedup floor):
zero failed client requests, the wedge detected and escalated, the
crashed replica respawned, and the fleet fully healthy again afterwards.

Run:  PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_chaos_recovery.py \
          -o python_files="bench_*.py" -o python_functions="bench_*" \
          --benchmark-disable -q
"""

import json
import os
import tempfile
import threading
import time

import numpy as np

from _shared import RESULTS_DIR, write_result
from repro.api import Client, StructurePayload
from repro.serving import ReplicaSpec, ReplicaSupervisor
from repro.serving.router import BREAKER_CLOSED

_JSON_PATH = RESULTS_DIR / "BENCH_chaos.json"

_REPLICAS = 3
_REQUESTS = 48
_ATOMS = 24
_FAULT_SPEC = "wedge:after=8:replica=0,crash:after=8:replica=1"
_HEAL_TIMEOUT_S = float(os.environ.get("CHAOS_HEAL_TIMEOUT_S", "60"))


def _structures(count: int, seed: int) -> list[StructurePayload]:
    """Unique structures: every request pays a real forward on some replica."""
    rng = np.random.default_rng(seed)
    return [
        StructurePayload(
            atomic_numbers=rng.integers(1, 9, _ATOMS),
            positions=(rng.random((_ATOMS, 3)) * 6.0).round(4),
        )
        for _ in range(count)
    ]


class _HealthSampler(threading.Thread):
    """Samples the supervisor's per-replica view to size outage windows."""

    def __init__(self, supervisor: ReplicaSupervisor, period_s: float = 0.05):
        super().__init__(name="chaos-health-sampler", daemon=True)
        self.supervisor = supervisor
        self.period_s = period_s
        self.samples: list[tuple[float, dict[int, bool]]] = []
        # Not "_stop": threading.Thread owns that name internally.
        self._halt = threading.Event()

    def run(self) -> None:
        while not self._halt.wait(self.period_s):
            view = self.supervisor.describe()["replicas"]
            flags = {
                int(replica_id): bool(
                    entry["alive"]
                    and entry["routing"] is not None
                    and entry["routing"]["healthy"]
                    and entry["routing"]["breaker"] == BREAKER_CLOSED
                )
                for replica_id, entry in view.items()
            }
            self.samples.append((time.monotonic(), flags))

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)

    def outage_windows(self) -> dict[int, float]:
        """Longest contiguous not-fully-routable window per replica (s)."""
        worst: dict[int, float] = {rid: 0.0 for rid in range(_REPLICAS)}
        down_since: dict[int, float | None] = {rid: None for rid in range(_REPLICAS)}
        for stamp, flags in self.samples:
            for rid in range(_REPLICAS):
                if not flags.get(rid, False):
                    if down_since[rid] is None:
                        down_since[rid] = stamp
                    worst[rid] = max(worst[rid], stamp - down_since[rid])
                else:
                    down_since[rid] = None
        return worst


def bench_chaos_recovery(benchmark):
    """Wedge + crash under load: zero failures, bounded recovery."""
    cache = os.path.join(tempfile.mkdtemp(prefix="repro-chaos-bench-"), "autotune.json")
    spec = ReplicaSpec(
        args=(
            "--preset",
            "tiny",
            "--workers",
            "1",
            "--flush-interval",
            "0.002",
            "--autotune-cache",
            cache,
            "--fault-spec",
            _FAULT_SPEC,
        )
    )
    supervisor = ReplicaSupervisor(
        count=_REPLICAS,
        spec=spec,
        probe_interval_s=0.2,
        probe_timeout_s=1.0,
        max_request_age_s=1.0,
        term_grace_s=0.5,
        breaker_failure_threshold=1,
        breaker_reset_s=0.5,
    )
    supervisor.start()
    sampler = _HealthSampler(supervisor)
    sampler.start()
    latencies: list[float] = []
    failures = 0
    try:
        with Client.http(
            supervisor.url,
            retries=5,
            backoff_s=0.1,
            backoff_max_s=1.0,
            read_timeout_s=60.0,
        ) as client:
            for payload in _structures(_REQUESTS, seed=31):
                start = time.perf_counter()
                try:
                    client.predict([payload])
                except Exception as error:  # noqa: BLE001 - counted, then asserted zero
                    failures += 1
                    print(f"[chaos] request failed: {error!r}")
                latencies.append(time.perf_counter() - start)

        # Wait for the fleet to finish healing: every replica alive,
        # routable, breaker closed.
        heal_start = time.monotonic()
        healed_at = None
        while time.monotonic() - heal_start < _HEAL_TIMEOUT_S:
            view = supervisor.describe()["replicas"]
            if all(
                entry["alive"]
                and entry["routing"] is not None
                and entry["routing"]["healthy"]
                and entry["routing"]["breaker"] == BREAKER_CLOSED
                for entry in view.values()
            ):
                healed_at = time.monotonic()
                break
            time.sleep(0.1)
    finally:
        sampler.stop()
        watchdog = dict(supervisor.watchdog)
        router_counters = dict(supervisor.router._counters)
        restarts = {
            rid: entry["restarts"]
            for rid, entry in supervisor.describe()["replicas"].items()
        }
        supervisor.close()

    lat_ms = np.asarray(latencies) * 1000.0
    outages = sampler.outage_windows()
    heal_s = None if healed_at is None else round(healed_at - heal_start, 3)

    text = (
        "chaos_recovery\n"
        f"fault spec      : {_FAULT_SPEC}\n"
        f"requests        : {_REQUESTS} ({failures} failed)\n"
        f"latency ms      : p50 {np.percentile(lat_ms, 50):7.1f}   "
        f"p95 {np.percentile(lat_ms, 95):7.1f}   max {lat_ms.max():7.1f}\n"
        f"outage windows  : "
        + "  ".join(f"r{rid}={outages[rid]:.2f}s" for rid in sorted(outages))
        + "\n"
        f"watchdog        : {watchdog}\n"
        f"router          : breaker_opens={router_counters['breaker_opens']} "
        f"rerouted={router_counters['rerouted']}\n"
        f"healed in       : {heal_s}s after the stream ended"
    )
    write_result("chaos_recovery", text)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {}
    if _JSON_PATH.exists():
        payload = json.loads(_JSON_PATH.read_text())
    payload.update(
        {
            "fault_spec": _FAULT_SPEC,
            "replicas": _REPLICAS,
            "requests": _REQUESTS,
            "failures": failures,
            "latency_ms_p50": round(float(np.percentile(lat_ms, 50)), 1),
            "latency_ms_p95": round(float(np.percentile(lat_ms, 95)), 1),
            "latency_ms_max": round(float(lat_ms.max()), 1),
            "outage_window_s": {str(rid): round(outages[rid], 2) for rid in outages},
            "watchdog": watchdog,
            "breaker_opens": router_counters["breaker_opens"],
            "rerouted": router_counters["rerouted"],
            "healed_after_s": heal_s,
        }
    )
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    assert failures == 0, f"{failures} client requests failed under chaos"
    assert watchdog["hung_detected"] >= 1, "the wedged replica was never detected"
    assert watchdog["respawns"] >= 1, "the wedged replica was never respawned"
    assert restarts[1] >= 1, "the crashed replica was never respawned"
    assert healed_at is not None, f"fleet not healed within {_HEAL_TIMEOUT_S}s"
    benchmark(lambda: None)
