"""Parallel-backend benchmarks: sharded kernels and concurrent serving.

The parallel backend's reason to exist is wall-clock: shard the
row-parallel hot kernels across cores, and run N serving workers'
forwards concurrently now that the engine is thread-safe.  Two axes
guard it:

- ``bench_parallel_kernel_speedup`` times the sharded kernels against
  the single-threaded numpy reference at paper-scale shapes (hundreds of
  thousands of edge rows, width-128 features) and records the per-kernel
  and best speedups.
- ``bench_concurrent_serving_scaling`` drives the same request stream
  through ``PredictionService.start(workers=1)`` vs ``workers=4`` (no
  model lock, shared buffer pool) and records the scaling.

The acceptance floor — ``PARALLEL_SPEEDUP_FLOOR``, default 1.3x — must
hold on **at least one axis**.  Which axes are floor-checked comes from
``PARALLEL_BENCH_AXES`` (default ``kernels,serving``); CI restricts it
to ``serving`` so shared-runner timing noise on the kernel axis cannot
flake unrelated PRs.  On a host with fewer than 2 usable cores the floor
is recorded but not enforced: thread parallelism cannot beat one core on
CPU-bound work, and asserting otherwise would only test the scheduler.

Both benches merge their numbers into
``benchmarks/results/BENCH_parallel.json`` (one CI artifact, one
regression trajectory).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from _shared import RESULTS_DIR, write_result
from repro.data import generate_corpus
from repro.models import HydraModel, ModelConfig
from repro.serving import PredictionService, ServiceConfig
from repro.tensor import kernels, parallel

_FLOOR = float(os.environ.get("PARALLEL_SPEEDUP_FLOOR", "1.3"))
_AXES = tuple(
    axis.strip()
    for axis in os.environ.get("PARALLEL_BENCH_AXES", "kernels,serving").split(",")
    if axis.strip()
)

_JSON_PATH = RESULTS_DIR / "BENCH_parallel.json"

#: Paper-scale message-passing shapes: a dense periodic batch has O(1e5)
#: edges and the paper's mid-ladder models run width 128.
_EDGES = 120_000
_NODES = 12_000
_WIDTH = 128


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _multicore() -> bool:
    return _usable_cores() >= 2 and parallel.worker_count() >= 2


def _merge_json(update: dict) -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {}
    if _JSON_PATH.exists():
        payload = json.loads(_JSON_PATH.read_text())
    payload.update(update)
    payload["floor"] = _FLOOR
    payload["enforced_axes"] = list(_AXES)
    payload["usable_cores"] = _usable_cores()
    payload["parallel_workers"] = parallel.worker_count()
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return _JSON_PATH


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _assert_floor(axis: str, speedup: float) -> None:
    """Enforce the floor for ``axis`` when it is checkable and selected."""
    if axis not in _AXES:
        return
    if not _multicore():
        # A 1-core host cannot express thread-level speedup; the JSON
        # records the measurement and the skip reason instead of a
        # meaningless assertion.
        print(f"[{axis}] floor not enforced: {_usable_cores()} usable core(s)")
        return
    assert speedup >= _FLOOR, (
        f"parallel {axis} axis only {speedup:.2f}x vs numpy "
        f"(required >= {_FLOOR}x on {_usable_cores()} cores)"
    )


def bench_parallel_kernel_speedup(benchmark):
    """Sharded kernels vs numpy at paper-scale message-passing shapes."""
    rng = np.random.default_rng(0)
    h = rng.standard_normal((_NODES, _WIDTH)).astype(np.float32)
    feat = rng.standard_normal((_EDGES, 16)).astype(np.float32)
    weight = rng.standard_normal((2 * _WIDTH + 16, _WIDTH)).astype(np.float32)
    bias = rng.standard_normal((_WIDTH,)).astype(np.float32)
    src = rng.integers(0, _NODES, _EDGES).astype(np.int64)
    dst = rng.integers(0, _NODES, _EDGES).astype(np.int64)
    activations = rng.standard_normal((_EDGES, _WIDTH)).astype(np.float32)
    gate = rng.standard_normal((_EDGES, 1)).astype(np.float32)
    vectors = rng.standard_normal((_EDGES, 3)).astype(np.float32)
    positions = rng.standard_normal((_NODES, 3)).astype(np.float32)

    cases = {
        "silu": lambda impl: impl.forward(activations),
        "linear": lambda impl: impl.forward(activations, weight[:_WIDTH], bias),
        "edge_message_linear": lambda impl: impl.forward(
            h, feat, weight, bias, src, dst
        ),
        "mul_segment_sum": lambda impl: impl.forward(vectors, gate, dst, _NODES),
        "gather_diff": lambda impl: impl.forward(positions, None, src, dst),
    }

    per_kernel: dict[str, dict[str, float]] = {}
    best_name, best_speedup = "", 0.0
    for name, call in cases.items():
        numpy_impl = kernels.get_kernel(name, "numpy")
        parallel_impl = kernels.get_kernel(name, "parallel")
        call(numpy_impl)  # warm caches (incidence matrices, executor)
        call(parallel_impl)
        t_numpy = _best_of(lambda: call(numpy_impl))
        t_parallel = _best_of(lambda: call(parallel_impl))
        speedup = t_numpy / t_parallel
        per_kernel[name] = {
            "numpy_ms": round(t_numpy * 1e3, 3),
            "parallel_ms": round(t_parallel * 1e3, 3),
            "speedup": round(speedup, 3),
        }
        if speedup > best_speedup:
            best_name, best_speedup = name, speedup

    lines = [
        "parallel_kernel_speedup "
        f"(edges={_EDGES}, width={_WIDTH}, workers={parallel.worker_count()})"
    ]
    for name, row in per_kernel.items():
        lines.append(
            f"{name:22s}: numpy {row['numpy_ms']:8.2f} ms  "
            f"parallel {row['parallel_ms']:8.2f} ms  ({row['speedup']:5.2f}x)"
        )
    lines.append(f"best axis speedup     : {best_speedup:5.2f}x ({best_name})")
    write_result("parallel_kernels", "\n".join(lines))
    _merge_json(
        {
            "kernels": per_kernel,
            "kernel_axis_speedup": round(best_speedup, 3),
            "kernel_axis_best": best_name,
        }
    )
    _assert_floor("kernels", best_speedup)
    benchmark(lambda: cases["silu"](kernels.get_kernel("silu", "parallel")))


def _serving_workload() -> tuple[HydraModel, list]:
    """A width-64 model and 48 structures heavy enough to release the GIL."""
    corpus = generate_corpus(220, seed=13)
    graphs = sorted(corpus.graphs, key=lambda g: -g.n_atoms)[:48]
    model = HydraModel(ModelConfig(hidden_dim=64, num_layers=3), seed=0)
    return model, graphs


def bench_concurrent_serving_scaling(benchmark):
    """4 serving workers vs 1 on the same stream (no model lock)."""
    model, graphs = _serving_workload()

    def session(workers: int) -> float:
        # Graph budget 4 → 12 micro-batches to spread across workers;
        # caching off so every request costs a forward.
        service = PredictionService(
            model,
            ServiceConfig(
                max_graphs=4,
                max_atoms=10**9,
                cache_capacity=0,
                flush_interval_s=0.001,
            ),
        )
        service.start(workers=workers)
        try:
            start = time.perf_counter()
            pending = [service.submit(graph) for graph in graphs]
            for request in pending:
                request.wait(60.0)
            return time.perf_counter() - start
        finally:
            service.stop()

    session(1)  # warm: pools, incidence caches
    best_1 = best_4 = float("inf")
    for _ in range(3):
        best_1 = min(best_1, session(1))
        best_4 = min(best_4, session(4))
    speedup = best_1 / best_4
    sps_1 = len(graphs) / best_1
    sps_4 = len(graphs) / best_4
    text = (
        "concurrent_serving_scaling\n"
        f"workers=1 : {best_1 * 1e3:8.1f} ms ({sps_1:8.1f} structures/s)\n"
        f"workers=4 : {best_4 * 1e3:8.1f} ms ({sps_4:8.1f} structures/s)\n"
        f"scaling   : {speedup:8.2f}x (floor {_FLOOR}x on "
        f"{_usable_cores()} usable cores)"
    )
    write_result("parallel_serving_scaling", text)
    _merge_json(
        {
            "serving_axis_speedup": round(speedup, 3),
            "serving_workers1_structures_per_s": round(sps_1, 1),
            "serving_workers4_structures_per_s": round(sps_4, 1),
        }
    )
    _assert_floor("serving", speedup)

    # The PR-level acceptance bar: >= floor on at least one measured axis
    # (whenever any axis is actually enforceable on this host).
    payload = json.loads(_JSON_PATH.read_text())
    axis_speedups = [
        payload[key]
        for key in ("kernel_axis_speedup", "serving_axis_speedup")
        if key in payload
    ]
    if _multicore() and _AXES == ("kernels", "serving"):
        assert max(axis_speedups) >= _FLOOR, (
            f"no axis reached {_FLOOR}x: {axis_speedups}"
        )
    benchmark(lambda: session(4))
