"""ABL3 bench — data-source mixture: leave-one-source-out training.

Sec. III-A aggregates five heterogeneous sources into one corpus; this
ablation quantifies what each source contributes by retraining without
it and evaluating on the full-mixture test set (which is how the paper's
fixed test set makes small/skewed corpora look worse — the same
mechanism as the 0.1 TB bump).
"""

from benchmarks._shared import write_result
from repro.data import Normalizer, generate_corpus
from repro.experiments.report import ascii_table
from repro.models import HydraModel, ModelConfig
from repro.train import Trainer, TrainerConfig


def _run_ablation():
    corpus = generate_corpus(220, seed=73)
    normalizer = Normalizer.fit(corpus.graphs)
    train_corpus, test_graphs = corpus.train_test_split(0.15, seed=74)

    def train_on(graphs, seed=0) -> float:
        model = HydraModel(ModelConfig(hidden_dim=16, num_layers=3), seed=seed)
        trainer = Trainer(
            model,
            normalizer,
            TrainerConfig(epochs=4, batch_size=16, learning_rate=1e-3, grad_clip=1.0),
        )
        history = trainer.fit(graphs, test_graphs)
        return history.best_test_loss

    results = {"full mixture": train_on(train_corpus.graphs)}
    for source in corpus.source_order:
        remaining = [g for g in train_corpus.graphs if g.source != source]
        results[f"without {source}"] = train_on(remaining)
    return results


def bench_ablation_data_mixture(benchmark):
    results = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    rows = [[name, f"{loss:.4f}"] for name, loss in results.items()]
    write_result(
        "ablation_data_mixture",
        ascii_table(
            ["training corpus", "test loss (full-mixture test set)"],
            rows,
            title="Ablation: leave-one-source-out",
        ),
    )
    # Dropping the dominant source (OC20, >60 % of bytes) must hurt more
    # than dropping the smallest one (MPTrj, ~1.4 %).
    assert results["without oc20"] > results["full mixture"]
    assert results["without oc20"] > results["without mptrj"]
