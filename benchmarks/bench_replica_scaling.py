"""Replica-serving scaling bench: N worker processes vs one, same stream.

One Python process tops out at roughly one core of model forwards no
matter how many serving threads it runs — the GIL serialises the
interpreter work around every kernel call.  ``ReplicaSupervisor`` is the
horizontal axis past that wall: N fork+exec'd replicas, each a full
engine in its own process, behind the async ``Router``.

This bench drives the *same* closed-loop request stream (8 client
threads, unique structures so no replica's result cache can answer from
memory) through a 1-replica fleet and an N-replica fleet and records the
end-to-end ``/v1/predict`` throughput ratio.

Floor policy (``REPLICA_SPEEDUP_FLOOR``, default 1.8x at 4 replicas):

- ``>= 4`` usable cores: N=4, the floor is enforced.
- 2-3 usable cores: N=2 and a weaker 2-replica floor
  (``REPLICA_SPEEDUP_FLOOR_2CORE``, default 1.15x) is enforced.
- 1 usable core: process parallelism cannot beat one core; the numbers
  are recorded to the JSON with the skip reason, nothing is asserted.

Results merge into ``benchmarks/results/BENCH_replicas.json`` (the CI
artifact).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_replica_scaling.py \
          -o python_files="bench_*.py" -o python_functions="bench_*" \
          --benchmark-disable -q
"""

import itertools
import json
import os
import tempfile
import threading
import time
import urllib.request

import numpy as np

from _shared import RESULTS_DIR, write_result
from repro.serving import ReplicaSpec, ReplicaSupervisor

_FLOOR_4 = float(os.environ.get("REPLICA_SPEEDUP_FLOOR", "1.8"))
_FLOOR_2 = float(os.environ.get("REPLICA_SPEEDUP_FLOOR_2CORE", "1.15"))

_JSON_PATH = RESULTS_DIR / "BENCH_replicas.json"

_CLIENTS = 8
_REQUESTS = 192  # per timed session, split across the client threads
_WARMUP = 16  # per session: buffer pools, plan compiles, socket reuse
_ATOMS = 48  # ~5 ms/forward on the tiny preset: dominates proxy overhead


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _fleet_sizes() -> tuple[int, float, bool]:
    """``(n_replicas, floor, enforced)`` for this host's core budget."""
    cores = _usable_cores()
    if cores >= 4:
        return 4, _FLOOR_4, True
    if cores >= 2:
        return 2, _FLOOR_2, True
    return 2, _FLOOR_2, False


def _bodies(count: int, seed: int) -> list[bytes]:
    """``count`` pre-encoded single-structure requests, all unique.

    Unique positions per request defeat every replica's structure-hash
    result cache — each request must pay a real forward, which is the
    work the fleet is supposed to spread across cores.  Encoding happens
    up front so client threads spend the timed window on I/O, not json.
    """
    rng = np.random.default_rng(seed)
    bodies = []
    for _ in range(count):
        numbers = rng.integers(1, 9, _ATOMS).tolist()
        positions = (rng.random((_ATOMS, 3)) * 6.0).round(4).tolist()
        payload = {
            "schema_version": "v1",
            "structures": [{"atomic_numbers": numbers, "positions": positions}],
        }
        bodies.append(json.dumps(payload).encode())
    return bodies


def _drive(url: str, bodies: list[bytes]) -> float:
    """Closed-loop: 8 threads drain a shared queue of pre-encoded bodies."""
    indices = itertools.count()
    errors: list[BaseException] = []

    def worker() -> None:
        while True:
            index = next(indices)
            if index >= len(bodies):
                return
            request = urllib.request.Request(
                url + "/v1/predict",
                data=bodies[index],
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=120) as response:
                    response.read()
            except BaseException as error:  # surfaced below, fails the bench
                errors.append(error)
                return

    threads = [threading.Thread(target=worker) for _ in range(_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise AssertionError(f"client errors during bench: {errors[:3]}")
    return elapsed


def _session(replicas: int, cache_path: str, seed: int) -> float:
    """Requests/s for a ``replicas``-wide fleet over the standard stream."""
    spec = ReplicaSpec(
        args=(
            "--preset",
            "tiny",
            "--workers",
            "2",
            "--flush-interval",
            "0.002",
            "--max-pending",
            "0",
            "--autotune-cache",
            cache_path,
        )
    )
    supervisor = ReplicaSupervisor(count=replicas, spec=spec)
    supervisor.start()
    try:
        _drive(supervisor.url, _bodies(_WARMUP, seed=seed + 1))
        bodies = _bodies(_REQUESTS, seed=seed)
        elapsed = _drive(supervisor.url, bodies)
        return len(bodies) / elapsed
    finally:
        supervisor.close()


def bench_replica_scaling(benchmark):
    """N replica processes vs 1 on the same closed-loop request stream."""
    replicas, floor, enforced = _fleet_sizes()
    cores = _usable_cores()
    cache_path = os.path.join(
        tempfile.mkdtemp(prefix="repro-replica-bench-"), "autotune.json"
    )

    rps_1 = _session(1, cache_path, seed=101)
    rps_n = _session(replicas, cache_path, seed=202)
    speedup = rps_n / rps_1

    text = (
        "replica_scaling\n"
        f"replicas=1 : {rps_1:8.1f} req/s\n"
        f"replicas={replicas} : {rps_n:8.1f} req/s\n"
        f"scaling    : {speedup:8.2f}x (floor {floor}x, "
        f"{'enforced' if enforced else 'recorded only'} on {cores} usable cores)"
    )
    write_result("replica_scaling", text)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {}
    if _JSON_PATH.exists():
        payload = json.loads(_JSON_PATH.read_text())
    payload.update(
        {
            "replicas": replicas,
            "clients": _CLIENTS,
            "requests_per_session": _REQUESTS,
            "rps_1_replica": round(rps_1, 1),
            f"rps_{replicas}_replicas": round(rps_n, 1),
            "speedup": round(speedup, 3),
            "floor": floor,
            "floor_enforced": enforced,
            "usable_cores": cores,
        }
    )
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    if enforced:
        assert speedup >= floor, (
            f"{replicas} replicas only {speedup:.2f}x vs 1 "
            f"(required >= {floor}x on {cores} cores)"
        )
    else:
        print(f"[replicas] floor not enforced: {cores} usable core(s)")
    benchmark(lambda: None)
