"""Legacy setup shim.

The execution environment is offline, so pip cannot fetch build-isolation
dependencies (``wheel``); this shim lets ``pip install -e .`` use the
classic ``setup.py develop`` path with the locally installed setuptools.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
